//! The three-level cache hierarchy of the paper's evaluation machine.
//!
//! Intel Xeon E5645: per-core 32 KiB L1d (8-way) and 256 KiB unified L2
//! (8-way), plus a 12 MiB shared L3 (16-way), 64-byte lines (§V-A1).
//! Accesses walk L1 → L2 → L3; a miss at every level fills all three
//! (inclusive fill, the common simplification).

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served from L1.
    L1,
    /// Served from L2.
    L2,
    /// Served from L3.
    L3,
    /// Missed everywhere — memory access.
    Memory,
}

/// A three-level cache hierarchy.
///
/// # Examples
///
/// ```rust
/// use bigmap_cache::{CacheHierarchy, HitLevel};
///
/// let mut h = CacheHierarchy::xeon_e5645();
/// assert_eq!(h.access(0x1000), HitLevel::Memory); // cold
/// assert_eq!(h.access(0x1000), HitLevel::L1);     // warm
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    level_hits: [u64; 4],
}

impl CacheHierarchy {
    /// Builds a hierarchy with explicit geometries.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            level_hits: [0; 4],
        }
    }

    /// The paper's evaluation machine (per core + shared L3).
    pub fn xeon_e5645() -> Self {
        Self::new(
            CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 12 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
        )
    }

    /// Accesses a byte address, returning the level that served it.
    pub fn access(&mut self, addr: u64) -> HitLevel {
        let level = if self.l1.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            self.l1_fill_only(); // L1 already filled by Cache::access
            HitLevel::L2
        } else if self.l3.access(addr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        self.level_hits[match level {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::L3 => 2,
            HitLevel::Memory => 3,
        }] += 1;
        level
    }

    // Fill bookkeeping note: `Cache::access` already fills each level it
    // touched on the miss path, so nothing extra to do. Kept as a named
    // no-op so the fill policy is explicit and greppable.
    #[inline]
    fn l1_fill_only(&self) {}

    /// Runs a whole address trace, returning per-level service counts
    /// `[l1, l2, l3, memory]`.
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> [u64; 4] {
        let before = self.level_hits;
        for addr in trace {
            self.access(addr);
        }
        [
            self.level_hits[0] - before[0],
            self.level_hits[1] - before[1],
            self.level_hits[2] - before[2],
            self.level_hits[3] - before[3],
        ]
    }

    /// Per-level service counts since construction/reset:
    /// `[l1, l2, l3, memory]`.
    pub fn level_hits(&self) -> [u64; 4] {
        self.level_hits
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Fraction of accesses served by L1 or L2 (the "fast levels" the paper
    /// wants the bitmap to live in).
    pub fn fast_hit_ratio(&self) -> f64 {
        let total: u64 = self.level_hits.iter().sum();
        if total == 0 {
            0.0
        } else {
            (self.level_hits[0] + self.level_hits[1]) as f64 / total as f64
        }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.level_hits = [0; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut h = CacheHierarchy::xeon_e5645();
        assert_eq!(h.access(64), HitLevel::Memory);
        assert_eq!(h.access(64), HitLevel::L1);
        assert_eq!(h.level_hits(), [1, 0, 0, 1]);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = CacheHierarchy::xeon_e5645();
        // Touch a 64 KiB region: fits L2 (256K), overflows L1 (32K).
        for addr in (0..64 * 1024u64).step_by(64) {
            h.access(addr);
        }
        // Second pass: most lines should come from L2, not memory.
        let counts = h.run_trace((0..64 * 1024u64).step_by(64));
        assert_eq!(counts[3], 0, "nothing should go to memory on the re-scan");
        assert!(counts[1] > 500, "most lines served from L2: {counts:?}");
    }

    #[test]
    fn working_set_beyond_l3_hits_memory() {
        let mut h = CacheHierarchy::xeon_e5645();
        // 16 MiB streaming: exceeds the 12 MiB L3.
        let pass = |h: &mut CacheHierarchy| h.run_trace((0..16 * 1024 * 1024u64).step_by(64));
        pass(&mut h);
        let counts = pass(&mut h);
        assert!(
            counts[3] > counts[0],
            "16M re-scan must still miss to memory: {counts:?}"
        );
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut h = CacheHierarchy::xeon_e5645();
        let pass = |h: &mut CacheHierarchy| h.run_trace((0..8 * 1024u64).step_by(8));
        pass(&mut h);
        let counts = pass(&mut h);
        let total: u64 = counts.iter().sum();
        assert_eq!(counts[0], total, "8K working set must be L1-resident");
        assert!(h.fast_hit_ratio() > 0.8);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = CacheHierarchy::xeon_e5645();
        h.access(0);
        h.reset();
        assert_eq!(h.level_hits(), [0; 4]);
        assert_eq!(h.access(0), HitLevel::Memory);
    }

    #[test]
    fn stats_accessors_wired() {
        let mut h = CacheHierarchy::xeon_e5645();
        h.access(0);
        h.access(0);
        assert_eq!(h.l1_stats().hits, 1);
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
        assert_eq!(h.l3_stats().misses, 1);
    }
}
