//! Reuse-distance analysis.
//!
//! §IV-C2 of the paper explains the flat structure's poor temporal
//! locality through *reuse distance*: "AFL's structure has a high reuse
//! distance as it accesses the full map". Reuse distance — the number of
//! distinct cache lines touched between two consecutive accesses to the
//! same line — predicts hit/miss behaviour in a fully-associative LRU
//! cache of any size, making it the canonical architecture-independent
//! locality measure.
//!
//! [`ReuseDistanceAnalyzer`] computes the distribution over an address
//! trace (line granularity) with a classic stack-distance algorithm.

use std::collections::HashMap;

/// Line size used for distance computation (matches the hierarchy model).
const LINE: u64 = 64;

/// Distribution of reuse distances over an address trace.
///
/// Distances are 1-based stack distances: the number of distinct lines
/// touched since the previous access to the same line, *including* the
/// line itself — so a fully-associative LRU cache of `C` lines hits
/// exactly the reuses with distance `<= C`.
#[derive(Debug, Clone, Default)]
pub struct ReuseHistogram {
    /// One entry per warm (non-cold) access: its stack distance.
    distances: Vec<u64>,
    /// First-ever touches (infinite distance).
    pub cold: u64,
    /// Total accesses analyzed.
    pub total: u64,
}

impl ReuseHistogram {
    /// Fraction of warm reuses with distance `<= lines` — the hit ratio of
    /// a fully-associative LRU cache holding `lines` lines.
    pub fn hit_ratio_at(&self, lines: u64) -> f64 {
        if self.distances.is_empty() {
            return 0.0;
        }
        let below = self.distances.iter().filter(|&&d| d <= lines).count();
        below as f64 / self.distances.len() as f64
    }

    /// Median reuse distance of warm accesses (`None` if no reuse at all).
    pub fn median_distance(&self) -> Option<u64> {
        if self.distances.is_empty() {
            return None;
        }
        let mut sorted = self.distances.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    /// Number of warm reuses recorded.
    pub fn warm(&self) -> u64 {
        self.distances.len() as u64
    }

    fn push(&mut self, distance: u64) {
        self.distances.push(distance);
    }
}

/// Streaming reuse-distance analyzer (line granularity).
///
/// Uses the move-to-front list formulation of stack distance: O(d) per
/// access where d is the measured distance — fine for the trace sizes the
/// Table I harness processes.
///
/// # Examples
///
/// ```rust
/// use bigmap_cache::reuse::ReuseDistanceAnalyzer;
///
/// let mut a = ReuseDistanceAnalyzer::new();
/// // Touch two lines alternately: every warm reuse has distance 1.
/// for _ in 0..100 {
///     a.access(0);
///     a.access(64);
/// }
/// let h = a.finish();
/// assert_eq!(h.cold, 2);
/// assert!(h.hit_ratio_at(2) > 0.99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistanceAnalyzer {
    // Most-recently-used first.
    stack: Vec<u64>,
    position: HashMap<u64, ()>, // membership check before the O(d) scan
    histogram: ReuseHistogram,
}

impl ReuseDistanceAnalyzer {
    /// Creates an analyzer with empty history.
    pub fn new() -> Self {
        ReuseDistanceAnalyzer::default()
    }

    /// Feeds one byte address.
    pub fn access(&mut self, addr: u64) {
        let line = addr / LINE;
        self.histogram.total += 1;
        if let std::collections::hash_map::Entry::Vacant(e) = self.position.entry(line) {
            e.insert(());
            self.stack.insert(0, line);
            self.histogram.cold += 1;
        } else {
            let depth = self
                .stack
                .iter()
                .position(|&l| l == line)
                .expect("membership implies presence");
            self.stack.remove(depth);
            self.stack.insert(0, line);
            // 1-based stack distance: depth 0 (re-access of the MRU line)
            // hits in a 1-line cache.
            self.histogram.push(depth as u64 + 1);
        }
    }

    /// Consumes the analyzer, returning the histogram.
    pub fn finish(self) -> ReuseHistogram {
        self.histogram
    }
}

/// Convenience: reuse histogram of a whole trace.
pub fn analyze_trace<I: IntoIterator<Item = u64>>(trace: I) -> ReuseHistogram {
    let mut analyzer = ReuseDistanceAnalyzer::new();
    for addr in trace {
        analyzer.access(addr);
    }
    analyzer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_accesses_counted() {
        let h = analyze_trace((0..10).map(|i| i * 64));
        assert_eq!(h.cold, 10);
        assert_eq!(h.total, 10);
        assert_eq!(h.median_distance(), None);
    }

    #[test]
    fn tight_loop_has_tiny_distance() {
        // Loop over 4 lines repeatedly.
        let trace: Vec<u64> = (0..400).map(|i| (i % 4) * 64).collect();
        let h = analyze_trace(trace);
        assert_eq!(h.cold, 4);
        assert!(h.hit_ratio_at(4) > 0.99);
        assert!(h.median_distance().unwrap() <= 4);
    }

    #[test]
    fn full_map_scan_has_distance_equal_to_map() {
        // Two sequential passes over a "map" of 1024 lines: every warm
        // reuse in pass 2 has distance ~1023.
        let pass: Vec<u64> = (0..1024u64).map(|i| i * 64).collect();
        let mut trace = pass.clone();
        trace.extend(&pass);
        let h = analyze_trace(trace);
        assert_eq!(h.cold, 1024);
        // A 512-line cache catches none of the reuses...
        assert!(h.hit_ratio_at(512) < 0.01);
        // ...a 2048-line cache catches all of them.
        assert!(h.hit_ratio_at(2048) > 0.99);
        let median = h.median_distance().unwrap();
        assert!((512..=1024).contains(&median), "median {median}");
    }

    #[test]
    fn sub_line_accesses_share_a_line() {
        let h = analyze_trace([0u64, 8, 16, 63]);
        assert_eq!(h.cold, 1);
        assert_eq!(h.total, 4);
        assert!(h.hit_ratio_at(1) > 0.99);
    }

    #[test]
    fn histogram_math_on_empty() {
        let h = ReuseHistogram::default();
        assert_eq!(h.hit_ratio_at(64), 0.0);
        assert_eq!(h.median_distance(), None);
    }

    #[test]
    fn paper_claim_flat_scan_vs_condensed_prefix() {
        // The §IV-C2 comparison in miniature: per-pass scans of a 2 MB map
        // (32k lines) vs a 16 KB used prefix (256 lines), three passes
        // each. The flat scan's reuse distance exceeds any realistic L1/L2;
        // the prefix's fits easily.
        let flat_pass: Vec<u64> = (0..32_768u64).map(|i| i * 64).collect();
        let mut flat_trace = Vec::new();
        for _ in 0..3 {
            flat_trace.extend(&flat_pass);
        }
        let flat = analyze_trace(flat_trace);

        let prefix_pass: Vec<u64> = (0..256u64).map(|i| i * 64).collect();
        let mut prefix_trace = Vec::new();
        for _ in 0..3 {
            prefix_trace.extend(&prefix_pass);
        }
        let prefix = analyze_trace(prefix_trace);

        // L2 = 256 KiB = 4096 lines.
        assert!(flat.hit_ratio_at(4096) < 0.01, "flat scan must blow L2");
        assert!(prefix.hit_ratio_at(4096) > 0.99, "prefix must fit L2");
    }
}
