//! A set-associative, LRU, write-allocate cache model.
//!
//! Single-level building block for the [`crate::hierarchy`]. Tracks the two
//! statistics the paper's Table I argues about:
//!
//! * **hit ratio** — the observable consequence of temporal/spatial
//!   locality,
//! * **pollution** — lines brought in and evicted without ever being
//!   re-referenced (the paper: whole-map scans "heavily pollute the
//!   processor's data cache").

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, or capacity not
    /// a multiple of `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        assert_eq!(
            self.size_bytes % (self.ways * self.line_bytes),
            0,
            "capacity must divide into ways x lines"
        );
        // Non-power-of-two set counts are allowed (the Xeon E5645's 12 MiB
        // L3 has 12,288 sets); indexing uses modulo rather than a mask.
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss/pollution counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (caused a fill).
    pub misses: u64,
    /// Lines evicted without a single re-reference after fill.
    pub polluting_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 for no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of evictions that were polluting (dead-on-eviction lines).
    pub fn pollution_ratio(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.polluting_evictions as f64 / self.evictions as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    reused: bool,
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>, // MRU-first order
    set_count: u64,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            set_count: sets as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses one byte address; returns `true` on hit. On miss the line is
    /// filled (write-allocate), possibly evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr % self.set_count) as usize;
        let tag = line_addr / self.set_count;
        let set = &mut self.sets[set_idx];

        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut line = set.remove(pos);
            line.reused = true;
            set.insert(0, line);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.config.ways {
            let victim = set.pop().expect("full set has a victim");
            self.stats.evictions += 1;
            if !victim.reused {
                self.stats.polluting_evictions += 1;
            }
        }
        set.insert(0, Line { tag, reused: false });
        false
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_checks() {
        assert_eq!(
            CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64
            }
            .sets(),
            64
        );
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
        }
        .sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x41)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with line_addr % 4 == 0: addresses 0, 1024, 2048.
        c.access(0); // miss, fill
        c.access(1024); // miss, fill (set full)
        c.access(0); // hit, 0 becomes MRU
        c.access(2048); // miss, evicts 1024 (LRU)
        assert!(c.access(0), "0 must have survived");
        assert!(!c.access(1024), "1024 must have been evicted");
    }

    #[test]
    fn pollution_counts_dead_lines() {
        let mut c = tiny();
        // Stream 5 distinct lines through set 0 with no reuse: evictions
        // are all polluting.
        for i in 0..5u64 {
            c.access(i * 1024);
        }
        let s = c.stats();
        assert_eq!(s.evictions, 3);
        assert_eq!(s.polluting_evictions, 3);
        assert_eq!(s.pollution_ratio(), 1.0);
    }

    #[test]
    fn reused_lines_not_polluting() {
        let mut c = tiny();
        c.access(0);
        c.access(0); // reuse
        c.access(1024);
        c.access(2048); // evicts 0 (LRU) — but it was reused
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.polluting_evictions, 0);
    }

    #[test]
    fn sequential_scan_exploits_spatial_locality() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        });
        for addr in 0..4096u64 {
            c.access(addr);
        }
        // 64 misses (one per line), 4032 hits.
        let s = c.stats();
        assert_eq!(s.misses, 64);
        assert!(s.hit_ratio() > 0.98);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0));
    }

    #[test]
    fn empty_stats_ratios_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.pollution_ratio(), 0.0);
    }
}
