//! Map-operation address-trace adapters (reproduces Table I).
//!
//! Generates the byte-address sequences each map data structure emits
//! during the per-test-case pipeline, feeds them through the simulated
//! hierarchy, and reports three measures per (operation, bitmap) row —
//! quantitative versions of the paper's qualitative Table I columns:
//!
//! * **temporal locality** — for *Update* rows, the fast-level (L1/L2)
//!   hit ratio over all accesses: the same edges are traversed again and
//!   again within and across executions, so their slots should be found
//!   hot. For *Others* (scan) rows, the fast-level hit ratio of line-new
//!   accesses: whether the pass's working set survived in the per-core
//!   caches since the previous test case (the paper's "high reuse
//!   distance" argument).
//! * **spatial locality** — the fraction of accesses that touch a line
//!   already touched earlier in the same pass (sequential scans are nearly
//!   all such accesses; scattered updates almost none).
//! * **cache pollution** — for scan (*Others*) rows, the fraction of
//!   fetched *bytes* that carry no active coverage data ("most of these
//!   locations do not contain any useful information", §IV-C1): a flat
//!   whole-map scan drags megabytes of dead bytes through the hierarchy,
//!   while BigMap's condensed prefix is 100% live. Update rows fetch only
//!   lines they actually write, so their pollution is the residual dead
//!   part of those demanded lines.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hierarchy::{CacheHierarchy, HitLevel};

const FLAT_COVERAGE_BASE: u64 = 0x1000_0000;
const INDEX_BASE: u64 = 0x4000_0000;
const CONDENSED_BASE: u64 = 0x7000_0000;
const VIRGIN_BASE: u64 = 0xA000_0000;
const LINE: u64 = 64;

/// Which map operation a trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracedOp {
    /// Bitmap update during target execution.
    Update,
    /// The whole-map (or used-prefix) passes: reset, classify, compare,
    /// hash — the paper's "Others" row. They share one access pattern, so
    /// Table I groups them.
    Others,
}

impl TracedOp {
    /// Table I label.
    pub fn label(self) -> &'static str {
        match self {
            TracedOp::Update => "Update",
            TracedOp::Others => "Others",
        }
    }
}

/// Which allocation a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitmapKind {
    /// The coverage map (flat, or BigMap's condensed map).
    Coverage,
    /// BigMap's index bitmap.
    Index,
}

impl BitmapKind {
    /// Table I label.
    pub fn label(self) -> &'static str {
        match self {
            BitmapKind::Coverage => "Coverage",
            BitmapKind::Index => "Index",
        }
    }
}

/// A synthetic fuzzing workload for trace generation.
///
/// Edge accesses repeat heavily within an execution (loops, shared
/// functions) — the temporal locality Table I row one relies on — so the
/// per-execution key sequence draws from the active set with heavy-tailed
/// repetition.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Map size in bytes (the hash space).
    pub map_size: usize,
    /// Number of distinct active keys (≈ discovered edges).
    pub active_keys: usize,
    /// Edge events per execution.
    pub events_per_exec: usize,
    /// Number of executions simulated.
    pub executions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceWorkload {
    /// A gvn-like default: ~65k active keys on a 2 MB map.
    pub fn gvn_like(map_size: usize) -> Self {
        TraceWorkload {
            map_size,
            active_keys: 65_000.min(map_size / 2),
            events_per_exec: 8_000,
            executions: 12,
            seed: 0xA11CE,
        }
    }
}

/// One (operation, bitmap) row of the measured Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow {
    /// The operation.
    pub op: TracedOp,
    /// The allocation the row describes.
    pub bitmap: BitmapKind,
    /// Accesses per execution (cost proxy).
    pub accesses_per_exec: f64,
    /// Fast-level (L1/L2) hit ratio: over all accesses for Update rows,
    /// over line-new accesses for Others rows (see module docs).
    pub temporal_hit: f64,
    /// Fraction of accesses that re-touch a line already touched in the
    /// same pass.
    pub spatial_ratio: f64,
    /// Fraction of fetched bytes holding no active data (scan rows only;
    /// update rows report 0 — their fetches are demanded writes).
    pub dead_byte_fraction: f64,
}

impl TraceRow {
    /// Paper-style temporal-locality label.
    pub fn temporal_label(&self) -> &'static str {
        if self.temporal_hit > 0.5 {
            "High"
        } else {
            "Low"
        }
    }

    /// Paper-style spatial-locality label.
    pub fn spatial_label(&self) -> &'static str {
        if self.spatial_ratio > 0.5 {
            "High"
        } else {
            "Low"
        }
    }

    /// Paper-style pollution label.
    pub fn pollution_label(&self) -> &'static str {
        if self.dead_byte_fraction > 0.5 {
            "High"
        } else if self.dead_byte_fraction > 0.05 {
            "Low"
        } else {
            "None"
        }
    }
}

/// An access annotated with the bitmap it belongs to.
#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u64,
    bitmap: BitmapKind,
}

#[derive(Debug, Default, Clone, Copy)]
struct RowAccum {
    accesses: u64,
    fast_hits: u64,
    line_new: u64,
    line_new_hits: u64,
    repeats: u64,
    fetched_bytes: u64,
    live_fetched_bytes: u64,
}

/// Measures one operation: `passes` yields the access list of each
/// execution; `live_bytes_per_line` maps a line address to the number of
/// bytes in it holding active data.
fn measure(
    op: TracedOp,
    workload: &TraceWorkload,
    live_bytes_per_line: &std::collections::HashMap<u64, u32>,
    mut passes: impl FnMut(usize) -> Vec<Access>,
) -> Vec<TraceRow> {
    let mut h = CacheHierarchy::xeon_e5645();
    let mut accum: std::collections::HashMap<BitmapKind, RowAccum> =
        std::collections::HashMap::new();

    for exec in 0..workload.executions {
        let trace = passes(exec);
        let mut seen_this_pass: HashSet<u64> = HashSet::new();
        for a in trace {
            let line = a.addr / LINE;
            let entry = accum.entry(a.bitmap).or_default();
            entry.accesses += 1;
            let level = h.access(a.addr);
            if matches!(level, HitLevel::L1 | HitLevel::L2) {
                entry.fast_hits += 1;
            }
            if seen_this_pass.insert(line) {
                entry.line_new += 1;
                if matches!(level, HitLevel::L1 | HitLevel::L2) {
                    entry.line_new_hits += 1;
                }
                entry.fetched_bytes += LINE;
                entry.live_fetched_bytes +=
                    u64::from(live_bytes_per_line.get(&line).copied().unwrap_or(0).min(64));
            } else {
                entry.repeats += 1;
            }
        }
    }

    let mut rows: Vec<TraceRow> = accum
        .into_iter()
        .map(|(bitmap, a)| TraceRow {
            op,
            bitmap,
            accesses_per_exec: a.accesses as f64 / workload.executions.max(1) as f64,
            temporal_hit: match op {
                TracedOp::Update if a.accesses > 0 => a.fast_hits as f64 / a.accesses as f64,
                TracedOp::Others if a.line_new > 0 => a.line_new_hits as f64 / a.line_new as f64,
                _ => 0.0,
            },
            spatial_ratio: if a.accesses == 0 {
                0.0
            } else {
                a.repeats as f64 / a.accesses as f64
            },
            dead_byte_fraction: match op {
                // Update fetches are demanded by actual writes; only scan
                // passes can pollute in the paper's sense.
                TracedOp::Update => 0.0,
                TracedOp::Others if a.fetched_bytes > 0 => {
                    1.0 - a.live_fetched_bytes as f64 / a.fetched_bytes as f64
                }
                TracedOp::Others => 0.0,
            },
        })
        .collect();
    rows.sort_by_key(|r| r.bitmap.label());
    rows
}

fn draw_keys(workload: &TraceWorkload) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(workload.seed);
    (0..workload.active_keys)
        .map(|_| rng.gen_range(0..workload.map_size as u32))
        .collect()
}

fn exec_key_sequence(workload: &TraceWorkload, keys: &[u32], rng: &mut SmallRng) -> Vec<u32> {
    let hot = (keys.len() / 8).max(1);
    (0..workload.events_per_exec)
        .map(|_| {
            if rng.gen_bool(0.8) {
                keys[rng.gen_range(0..hot)]
            } else {
                keys[rng.gen_range(0..keys.len())]
            }
        })
        .collect()
}

/// Accumulates per-line active-byte counts for `width`-byte slots at
/// `base + slot * width`.
fn add_live(
    map: &mut std::collections::HashMap<u64, u32>,
    base: u64,
    slots: impl Iterator<Item = u64>,
    width: u64,
) {
    for s in slots {
        *map.entry((base + s * width) / LINE).or_default() += width as u32;
    }
}

/// Runs the pipeline traces for **AFL's flat structure**.
pub fn trace_flat(workload: &TraceWorkload) -> Vec<TraceRow> {
    let keys = draw_keys(workload);
    let map = workload.map_size as u64;
    let mut live_all = std::collections::HashMap::new();
    add_live(
        &mut live_all,
        FLAT_COVERAGE_BASE,
        keys.iter().map(|&k| k as u64),
        1,
    );
    // The virgin map's live bytes mirror the coverage map's.
    add_live(
        &mut live_all,
        VIRGIN_BASE,
        keys.iter().map(|&k| k as u64),
        1,
    );

    let mut rows = Vec::new();
    // Update: scattered writes at the key addresses.
    let mut rng = SmallRng::seed_from_u64(workload.seed ^ 0xD15C);
    rows.extend(measure(TracedOp::Update, workload, &live_all, |_| {
        exec_key_sequence(workload, &keys, &mut rng)
            .into_iter()
            .map(|k| Access {
                addr: FLAT_COVERAGE_BASE + k as u64,
                bitmap: BitmapKind::Coverage,
            })
            .collect()
    }));
    // Others: whole-map sequential scan (8-byte stride like the word-wise
    // implementation), local map + virgin map (the compare pass).
    rows.extend(measure(TracedOp::Others, workload, &live_all, |_| {
        let mut t = Vec::with_capacity((map / 8) as usize * 2);
        for addr in (0..map).step_by(8) {
            t.push(Access {
                addr: FLAT_COVERAGE_BASE + addr,
                bitmap: BitmapKind::Coverage,
            });
            t.push(Access {
                addr: VIRGIN_BASE + addr,
                bitmap: BitmapKind::Coverage,
            });
        }
        t
    }));
    rows
}

/// Runs the pipeline traces for **BigMap's two-level structure**.
pub fn trace_bigmap(workload: &TraceWorkload) -> Vec<TraceRow> {
    let keys = draw_keys(workload);
    // Condensed slot of each key = discovery order; the draw order is a
    // uniform permutation, so the draw rank is equivalent for tracing.
    let slot_map: std::collections::HashMap<u32, u64> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let used = workload.active_keys as u64;

    // Every condensed-prefix byte is live; index entries are 4 live bytes.
    let mut live = std::collections::HashMap::new();
    add_live(&mut live, CONDENSED_BASE, 0..used, 1);
    add_live(&mut live, VIRGIN_BASE, 0..used, 1);
    add_live(&mut live, INDEX_BASE, keys.iter().map(|&k| k as u64), 4);

    let mut rows = Vec::new();
    let mut rng = SmallRng::seed_from_u64(workload.seed ^ 0xD15C);
    rows.extend(measure(TracedOp::Update, workload, &live, |_| {
        exec_key_sequence(workload, &keys, &mut rng)
            .into_iter()
            .flat_map(|k| {
                [
                    Access {
                        addr: INDEX_BASE + 4 * k as u64,
                        bitmap: BitmapKind::Index,
                    },
                    Access {
                        addr: CONDENSED_BASE + slot_map[&k],
                        bitmap: BitmapKind::Coverage,
                    },
                ]
            })
            .collect()
    }));
    rows.extend(measure(TracedOp::Others, workload, &live, |_| {
        let mut t = Vec::with_capacity((used / 8) as usize * 2);
        for addr in (0..used).step_by(8) {
            t.push(Access {
                addr: CONDENSED_BASE + addr,
                bitmap: BitmapKind::Coverage,
            });
            t.push(Access {
                addr: VIRGIN_BASE + addr,
                bitmap: BitmapKind::Coverage,
            });
        }
        t
    }));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> TraceWorkload {
        TraceWorkload {
            map_size: 2 << 20,
            active_keys: 20_000,
            events_per_exec: 4_000,
            executions: 6,
            seed: 7,
        }
    }

    fn row(rows: &[TraceRow], op: TracedOp, bitmap: BitmapKind) -> TraceRow {
        *rows
            .iter()
            .find(|r| r.op == op && r.bitmap == bitmap)
            .expect("row present")
    }

    #[test]
    fn flat_others_low_temporal_high_spatial_high_pollution() {
        let rows = trace_flat(&workload());
        let others = row(&rows, TracedOp::Others, BitmapKind::Coverage);
        // 2x2MB working set exceeds L1/L2; line-new accesses mostly miss
        // to L3/memory on first pass; spatially 7/8 accesses re-touch the
        // line; with 20k active keys in 32k lines x2 maps most lines are
        // dead.
        assert_eq!(others.spatial_label(), "High");
        assert_eq!(others.pollution_label(), "High");
        assert!(
            others.dead_byte_fraction > 0.5,
            "dead fraction {:.2}",
            others.dead_byte_fraction
        );
        assert!(others.accesses_per_exec > 100_000.0);
    }

    #[test]
    fn flat_update_high_temporal_low_spatial() {
        let rows = trace_flat(&workload());
        let update = row(&rows, TracedOp::Update, BitmapKind::Coverage);
        assert_eq!(update.temporal_label(), "High", "{update:?}");
        assert_eq!(update.spatial_label(), "Low", "{update:?}");
        assert_eq!(update.pollution_label(), "None", "{update:?}");
    }

    #[test]
    fn bigmap_others_high_everything_no_pollution() {
        let rows = trace_bigmap(&workload());
        let others = row(&rows, TracedOp::Others, BitmapKind::Coverage);
        assert_eq!(others.temporal_label(), "High", "{others:?}");
        assert_eq!(others.spatial_label(), "High", "{others:?}");
        assert_eq!(others.pollution_label(), "None", "{others:?}");
    }

    #[test]
    fn bigmap_others_orders_of_magnitude_cheaper() {
        let w = workload();
        let flat = row(&trace_flat(&w), TracedOp::Others, BitmapKind::Coverage);
        let big = row(&trace_bigmap(&w), TracedOp::Others, BitmapKind::Coverage);
        assert!(big.accesses_per_exec * 10.0 < flat.accesses_per_exec);
    }

    #[test]
    fn bigmap_update_has_index_and_coverage_rows() {
        let rows = trace_bigmap(&workload());
        let index = row(&rows, TracedOp::Update, BitmapKind::Index);
        let cov = row(&rows, TracedOp::Update, BitmapKind::Coverage);
        // Index: scattered like the flat update; coverage: condensed, so
        // spatial locality appears (many slots share lines).
        assert_eq!(index.spatial_label(), "Low", "{index:?}");
        assert_eq!(index.temporal_label(), "High", "{index:?}");
        assert!(
            cov.spatial_ratio > index.spatial_ratio,
            "{cov:?} vs {index:?}"
        );
        assert_eq!(cov.pollution_label(), "None", "{cov:?}");
        // Two accesses per event total.
        let w = workload();
        assert!(
            ((index.accesses_per_exec + cov.accesses_per_exec) / w.events_per_exec as f64 - 2.0)
                .abs()
                < 0.01
        );
    }

    #[test]
    fn labels_thresholds() {
        let mk = |t, s, d| TraceRow {
            op: TracedOp::Others,
            bitmap: BitmapKind::Coverage,
            accesses_per_exec: 0.0,
            temporal_hit: t,
            spatial_ratio: s,
            dead_byte_fraction: d,
        };
        assert_eq!(mk(0.9, 0.0, 0.0).temporal_label(), "High");
        assert_eq!(mk(0.1, 0.0, 0.0).temporal_label(), "Low");
        assert_eq!(mk(0.0, 0.9, 0.0).spatial_label(), "High");
        assert_eq!(mk(0.0, 0.0, 0.9).pollution_label(), "High");
        assert_eq!(mk(0.0, 0.0, 0.2).pollution_label(), "Low");
        assert_eq!(mk(0.0, 0.0, 0.0).pollution_label(), "None");
    }

    #[test]
    fn gvn_like_workload_is_consistent() {
        let w = TraceWorkload::gvn_like(2 << 20);
        assert_eq!(w.map_size, 2 << 20);
        assert!(w.active_keys <= w.map_size / 2);
    }
}
