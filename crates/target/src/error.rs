//! Typed errors for program construction and validation.

use std::fmt;

/// Errors produced by [`crate::ProgramBuilder::build`], [`crate::Program::validate`]
/// and [`crate::GeneratorConfig::validate`].
///
/// The enum is comparable (`PartialEq`) so tests can assert on exact
/// validation outcomes, and implements [`std::error::Error`] so it threads
/// through `?` into `Box<dyn Error>` contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetError {
    /// The program (or builder) was given an empty name.
    EmptyName,
    /// A multi-byte compare was constructed with no bytes to compare.
    EmptyMagic {
        /// Index of the offending site in builder order.
        site: usize,
    },
    /// A switch site was constructed with no case arms.
    EmptySwitch {
        /// Index of the offending site in builder order.
        site: usize,
    },
    /// A block references a successor outside the program.
    DanglingBlock {
        /// Index of the block holding the bad reference.
        block: usize,
        /// The out-of-range successor index.
        successor: usize,
    },
    /// A call block references a function that does not exist.
    DanglingFunction {
        /// Index of the call block.
        block: usize,
        /// The out-of-range function index.
        function: usize,
    },
    /// A function entry or return index is out of range.
    MalformedFunction {
        /// Index of the malformed function.
        function: usize,
    },
    /// The program has no functions at all.
    NoFunctions,
    /// A generator configuration field is out of its legal range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        expected: &'static str,
    },
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::EmptyName => write!(f, "program name must not be empty"),
            TargetError::EmptyMagic { site } => {
                write!(f, "magic gate at site {site} compares zero bytes")
            }
            TargetError::EmptySwitch { site } => {
                write!(f, "switch at site {site} has no case arms")
            }
            TargetError::DanglingBlock { block, successor } => {
                write!(
                    f,
                    "block {block} references out-of-range successor {successor}"
                )
            }
            TargetError::DanglingFunction { block, function } => {
                write!(
                    f,
                    "call block {block} references out-of-range function {function}"
                )
            }
            TargetError::MalformedFunction { function } => {
                write!(
                    f,
                    "function {function} has out-of-range entry or return block"
                )
            }
            TargetError::NoFunctions => write!(f, "program has no functions"),
            TargetError::InvalidConfig { field, expected } => {
                write!(f, "invalid generator config: `{field}` must be {expected}")
            }
        }
    }
}

impl std::error::Error for TargetError {}
