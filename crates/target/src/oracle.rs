//! The novelty oracle behind coverage-preserving selective tracing.
//!
//! "Same Coverage, Less Bloat"-style coverage-guided tracing runs most
//! test cases *untraced* and re-executes only the suspicious ones with
//! full coverage instrumentation. That is sound only if the cheap
//! untraced pass can prove "this execution cannot change any campaign
//! state" — the oracle here is that proof, and it is **strictly
//! conservative by construction**: false positives (flagging an
//! already-seen execution as suspicious, costing one redundant traced
//! exec) are allowed; false negatives (skipping an execution that would
//! have shown new coverage) are not.
//!
//! Two observations per execution, both fed by a [`TraceSink`]
//! implementation so the interpreter's fast path reuses the exact
//! step-charging loop of the traced path:
//!
//! * **Hit-count filter over block IDs** — a fixed-size table with one
//!   bit per `(block, AFL hit-count bucket)` pair. Program block IDs are
//!   dense (`0..block_count`), so the table indexes exactly rather than
//!   lossily: a bit is set only after a *traced* execution committed
//!   that pair, and a cleared bit always flags the exec. This is the
//!   "bloom filter" role with a zero false-"seen" rate for in-range
//!   blocks; any out-of-range block conservatively flags the exec.
//! * **Rolling path hash** — a 64-bit FNV-style hash over the complete
//!   event sequence (blocks, call sites, returns, in order). Two
//!   executions with equal hashes traced through equal event sequences
//!   (modulo 64-bit collisions, see below), and an equal event sequence
//!   reproduces byte-identical coverage under *any* metric — so a path
//!   whose hash was committed by a previous traced `Ok` execution is
//!   provably `NoNew` against a virgin map that only ever shrinks.
//!
//! An execution may be skipped only when **both** hold: every
//! `(block, bucket)` pair it produced is already committed, *and* its
//! path hash is in the committed set. Everything else — crashes, hangs,
//! any unseen pair or path — must be re-executed with full tracing.
//!
//! The path-hash set membership is exact (a `HashSet`, capped; once the
//! cap is reached new paths simply stay uncommitted and keep re-tracing,
//! which degrades throughput, never coverage). The only residual
//! unsoundness is a 64-bit hash collision between two distinct event
//! sequences (~2⁻⁶⁴ per pair), and a collision must *additionally* pass
//! the exact per-block bucket filter to cause a wrong skip.

use std::collections::HashSet;

use crate::interp::TraceSink;

/// Default cap on the committed path-hash set. At 8 bytes per hash this
/// bounds the set at ~8 MiB; campaigns that somehow exceed it keep
/// running correctly (new paths simply keep re-tracing forever).
pub const DEFAULT_MAX_PATHS: usize = 1 << 20;

/// FNV-1a 64-bit offset basis / prime (the rolling path hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Event-kind tags mixed into the path hash so a block index can never
/// alias a call-site index or a return.
const TAG_BLOCK: u64 = 0x9e37_79b9_7f4a_7c15;
const TAG_CALL: u64 = 0xc2b2_ae3d_27d4_eb4f;
const TAG_RETURN: u64 = 0x165667b19e3779f9;

#[inline]
fn bucket_bit(count: u32) -> u8 {
    // AFL's classify_counts bucketing, as a bit index 0..8.
    match count {
        0 => 0, // unreachable for touched blocks; bit 0 is the "1" bucket
        1 => 1 << 0,
        2 => 1 << 1,
        3 => 1 << 2,
        4..=7 => 1 << 3,
        8..=15 => 1 << 4,
        16..=31 => 1 << 5,
        32..=127 => 1 << 6,
        _ => 1 << 7,
    }
}

/// The persistent + per-execution state of the novelty oracle. See the
/// module docs for the conservativeness argument.
///
/// # Examples
///
/// ```rust
/// use bigmap_target::{Interpreter, NoveltyOracle, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = ProgramBuilder::new("demo").gate(0, b'!', false).build()?;
/// let interp = Interpreter::new(&program);
/// let mut oracle = NoveltyOracle::new(program.block_count());
///
/// // First sighting: nothing is committed yet, so the exec is suspicious.
/// let run = interp.run_fast(b"!", &mut oracle);
/// assert!(run.outcome.is_ok());
/// assert!(!oracle.provably_seen());
/// oracle.commit(); // ...after the full traced re-execution
///
/// // Replay of the identical path: provably seen, safe to skip.
/// interp.run_fast(b"!", &mut oracle);
/// assert!(oracle.provably_seen());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NoveltyOracle {
    /// One byte per dense block ID: the set of hit-count buckets
    /// committed for that block (bit i = bucket i seen in a traced exec).
    seen_buckets: Vec<u8>,
    /// Path hashes of committed (fully traced, `Ok`) executions.
    seen_paths: HashSet<u64>,
    /// Cap on `seen_paths` growth.
    max_paths: usize,
    /// Per-exec scratch: this execution's hit count per block.
    counts: Vec<u32>,
    /// Per-exec scratch: blocks touched this execution (for O(touched)
    /// reset and commit).
    touched: Vec<u32>,
    /// Per-exec scratch: rolling hash over the event sequence so far.
    path_hash: u64,
    /// Per-exec scratch: a block ID outside `seen_buckets` was observed —
    /// never provably seen.
    out_of_range: bool,
}

impl NoveltyOracle {
    /// An empty oracle for a program with `block_count` dense block IDs,
    /// with the default path-set cap.
    pub fn new(block_count: usize) -> Self {
        Self::with_max_paths(block_count, DEFAULT_MAX_PATHS)
    }

    /// [`NoveltyOracle::new`] with an explicit cap on the committed
    /// path-hash set (tests exercise the saturation path with tiny caps).
    pub fn with_max_paths(block_count: usize, max_paths: usize) -> Self {
        NoveltyOracle {
            seen_buckets: vec![0u8; block_count],
            seen_paths: HashSet::new(),
            max_paths,
            counts: vec![0u32; block_count],
            touched: Vec::new(),
            path_hash: FNV_OFFSET,
            out_of_range: false,
        }
    }

    /// Clears the per-execution scratch. Called by the interpreter's
    /// fast path before streaming a new execution into the sink; costs
    /// O(blocks touched by the previous exec).
    pub fn begin_exec(&mut self) {
        for &block in &self.touched {
            self.counts[block as usize] = 0;
        }
        self.touched.clear();
        self.path_hash = FNV_OFFSET;
        self.out_of_range = false;
    }

    /// The rolling path hash of the current (or just-finished) execution.
    pub fn path_hash(&self) -> u64 {
        self.path_hash
    }

    /// Whether the just-finished execution is *provably* identical in
    /// coverage effect to a previously committed traced execution: every
    /// `(block, bucket)` pair is committed **and** the full path hash is
    /// committed. `false` means "suspicious — re-trace"; the campaign
    /// additionally re-traces every non-`Ok` outcome regardless of this
    /// answer.
    pub fn provably_seen(&self) -> bool {
        if self.out_of_range || !self.seen_paths.contains(&self.path_hash) {
            return false;
        }
        self.touched.iter().all(|&block| {
            let seen = self.seen_buckets[block as usize];
            seen & bucket_bit(self.counts[block as usize]) != 0
        })
    }

    /// Commits the just-finished execution's observations: sets its
    /// `(block, bucket)` bits and inserts its path hash (unless the set
    /// is at capacity). Call **only after** the execution was re-run with
    /// full tracing and its coverage compared against the `Ok` virgin
    /// map — committing anything else would un-conservatively teach the
    /// oracle paths whose coverage the campaign never consumed.
    pub fn commit(&mut self) {
        if self.out_of_range {
            return;
        }
        for &block in &self.touched {
            self.seen_buckets[block as usize] |= bucket_bit(self.counts[block as usize]);
        }
        if self.seen_paths.len() < self.max_paths {
            self.seen_paths.insert(self.path_hash);
        }
    }

    /// Number of committed path hashes.
    pub fn seen_path_count(&self) -> usize {
        self.seen_paths.len()
    }

    /// The number of dense block IDs the filter covers.
    pub fn block_count(&self) -> usize {
        self.seen_buckets.len()
    }

    /// Serializes the committed state (not the per-exec scratch) for
    /// checkpointing: the per-block bucket bitmask plus the sorted path
    /// hashes. Sorting makes the snapshot deterministic regardless of
    /// hash-set iteration order.
    pub fn snapshot(&self) -> OracleSnapshot {
        let mut paths: Vec<u64> = self.seen_paths.iter().copied().collect();
        paths.sort_unstable();
        OracleSnapshot {
            buckets: self.seen_buckets.clone(),
            paths,
        }
    }

    /// Installs committed state captured by [`NoveltyOracle::snapshot`].
    /// Returns `false` (leaving the oracle empty — the conservative
    /// fallback, every exec re-traces until re-committed) when the
    /// snapshot's filter size disagrees with this oracle's block count.
    pub fn install(&mut self, snapshot: &OracleSnapshot) -> bool {
        if snapshot.buckets.len() != self.seen_buckets.len() {
            return false;
        }
        self.seen_buckets.copy_from_slice(&snapshot.buckets);
        self.seen_paths = snapshot.paths.iter().copied().collect();
        true
    }

    /// Whether any state has been committed (or installed).
    pub fn is_empty(&self) -> bool {
        self.seen_paths.is_empty() && self.seen_buckets.iter().all(|&b| b == 0)
    }
}

/// The committed oracle state, as captured for checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OracleSnapshot {
    /// Per-block bucket bitmask (one byte per dense block ID).
    pub buckets: Vec<u8>,
    /// Committed path hashes, sorted ascending.
    pub paths: Vec<u64>,
}

impl TraceSink for NoveltyOracle {
    #[inline]
    fn on_block(&mut self, global_block: usize) {
        self.path_hash = (self.path_hash ^ (global_block as u64).wrapping_add(TAG_BLOCK))
            .wrapping_mul(FNV_PRIME);
        match self.counts.get_mut(global_block) {
            Some(count) => {
                if *count == 0 {
                    self.touched.push(global_block as u32);
                }
                *count = count.saturating_add(1);
            }
            None => self.out_of_range = true,
        }
    }

    #[inline]
    fn on_call(&mut self, call_site: usize) {
        self.path_hash =
            (self.path_hash ^ (call_site as u64).wrapping_add(TAG_CALL)).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn on_return(&mut self) {
        self.path_hash = (self.path_hash ^ TAG_RETURN).wrapping_mul(FNV_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, TraceSink};
    use crate::ProgramBuilder;

    fn feed(oracle: &mut NoveltyOracle, blocks: &[usize]) {
        oracle.begin_exec();
        for &b in blocks {
            oracle.on_block(b);
        }
    }

    #[test]
    fn unseen_paths_are_suspicious_until_committed() {
        let mut oracle = NoveltyOracle::new(8);
        feed(&mut oracle, &[0, 1, 2]);
        assert!(!oracle.provably_seen(), "nothing committed yet");
        oracle.commit();
        feed(&mut oracle, &[0, 1, 2]);
        assert!(oracle.provably_seen(), "identical replay after commit");
    }

    #[test]
    fn new_bucket_on_seen_path_shape_is_suspicious() {
        let mut oracle = NoveltyOracle::new(4);
        feed(&mut oracle, &[0, 1]);
        oracle.commit();
        // Same blocks, different hit counts — different path hash AND a
        // fresh bucket; both layers flag it.
        feed(&mut oracle, &[0, 1, 1]);
        assert!(!oracle.provably_seen());
    }

    #[test]
    fn event_order_changes_the_path_hash() {
        let mut oracle = NoveltyOracle::new(4);
        feed(&mut oracle, &[0, 1]);
        let ab = oracle.path_hash();
        feed(&mut oracle, &[1, 0]);
        assert_ne!(ab, oracle.path_hash(), "order must be hash-significant");
    }

    #[test]
    fn calls_and_returns_are_hash_significant() {
        let mut oracle = NoveltyOracle::new(4);
        feed(&mut oracle, &[0]);
        let plain = oracle.path_hash();
        oracle.begin_exec();
        oracle.on_block(0);
        oracle.on_call(0);
        oracle.on_return();
        assert_ne!(plain, oracle.path_hash());
    }

    #[test]
    fn out_of_range_block_is_never_provably_seen() {
        let mut oracle = NoveltyOracle::new(2);
        feed(&mut oracle, &[0, 5]);
        oracle.commit(); // must be a no-op
        feed(&mut oracle, &[0, 5]);
        assert!(!oracle.provably_seen(), "out-of-range stays conservative");
    }

    #[test]
    fn path_cap_saturates_conservatively() {
        let mut oracle = NoveltyOracle::with_max_paths(8, 1);
        feed(&mut oracle, &[0]);
        oracle.commit();
        feed(&mut oracle, &[1]);
        oracle.commit(); // over the cap: hash not inserted
        assert_eq!(oracle.seen_path_count(), 1);
        feed(&mut oracle, &[1]);
        assert!(
            !oracle.provably_seen(),
            "uncommitted path must stay suspicious"
        );
        feed(&mut oracle, &[0]);
        assert!(oracle.provably_seen(), "the committed one still skips");
    }

    #[test]
    fn bucket_bits_follow_afl_buckets() {
        // Two counts in the same AFL bucket share a bit; across buckets
        // they differ.
        assert_eq!(bucket_bit(4), bucket_bit(7));
        assert_eq!(bucket_bit(8), bucket_bit(15));
        assert_eq!(bucket_bit(128), bucket_bit(100_000));
        let mut bits: Vec<u8> = [1u32, 2, 3, 4, 8, 16, 32, 128]
            .iter()
            .map(|&c| bucket_bit(c))
            .collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 8, "eight distinct buckets");
    }

    #[test]
    fn snapshot_install_round_trips() {
        let mut oracle = NoveltyOracle::new(6);
        feed(&mut oracle, &[0, 3, 3]);
        oracle.commit();
        feed(&mut oracle, &[5]);
        oracle.commit();
        let snap = oracle.snapshot();

        let mut fresh = NoveltyOracle::new(6);
        assert!(fresh.install(&snap));
        assert_eq!(fresh.snapshot(), snap);
        feed(&mut fresh, &[0, 3, 3]);
        assert!(fresh.provably_seen());

        let mut mismatched = NoveltyOracle::new(7);
        assert!(!mismatched.install(&snap), "size mismatch must refuse");
        assert!(mismatched.is_empty());
    }

    #[test]
    fn snapshot_paths_are_sorted_and_deterministic() {
        let mut oracle = NoveltyOracle::new(4);
        for blocks in [&[0usize, 1][..], &[1, 0], &[2], &[3, 3]] {
            feed(&mut oracle, blocks);
            oracle.commit();
        }
        let snap = oracle.snapshot();
        let mut sorted = snap.paths.clone();
        sorted.sort_unstable();
        assert_eq!(snap.paths, sorted);
        assert_eq!(oracle.snapshot(), snap, "repeat snapshots identical");
    }

    #[test]
    fn interpreter_fast_path_matches_traced_events() {
        // The oracle's view through run_fast must hash the exact event
        // stream the traced path sees: replaying the same input twice
        // yields the same path hash, different inputs (different paths)
        // yield different hashes.
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .gate(1, b'B', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        let mut oracle = NoveltyOracle::new(program.block_count());
        interp.run_fast(b"AB", &mut oracle);
        let first = oracle.path_hash();
        interp.run_fast(b"AB", &mut oracle);
        assert_eq!(first, oracle.path_hash());
        interp.run_fast(b"ZZ", &mut oracle);
        assert_ne!(first, oracle.path_hash());
    }
}
