//! Synthetic instrumented-target substrate for the BigMap reproduction.
//!
//! Real fuzzing evaluations run instrumented binaries; this crate stands in
//! for them with deterministic, seeded control-flow-graph programs and an
//! interpreter that reports every executed basic block to a [`TraceSink`] —
//! the same event stream an AFL-instrumented target writes into its
//! shared-memory map. The pieces:
//!
//! * [`Program`] — the IR: byte-guarded branches, multi-byte compare
//!   roadblocks, switches, bounded loops, guarded calls, crash and hang
//!   sites, with full static-edge enumeration for CollAFL-style analyses.
//! * [`ProgramBuilder`] — hand-built single-function programs for tests
//!   and examples.
//! * [`GeneratorConfig`] / [`generate_seeds`] — seeded random program and
//!   corpus generation (same seed → identical program, identical corpus).
//! * [`BenchmarkSpec`] — the paper's Table II suite (zlib … instcombine),
//!   buildable at any density.
//! * [`Interpreter`] with [`ExecConfig`] / [`ExecOutcome`] — deterministic
//!   execution with step-bounded hang detection.
//! * [`apply_laf_intel`] — the roadblock-splitting IR transform.
//!
//! ```
//! use bigmap_target::{Interpreter, NullSink, ProgramBuilder};
//!
//! let program = ProgramBuilder::new("hello")
//!     .gate(0, b'h', false)
//!     .magic_gate(1, b"i!", true)
//!     .build()
//!     .unwrap();
//! let interpreter = Interpreter::new(&program);
//! assert!(interpreter.run(b"hi!", &mut NullSink).is_crash());
//! assert!(interpreter.run(b"ho!", &mut NullSink).is_ok());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod compile;
mod error;
mod generator;
mod interp;
mod ir;
mod lafintel;
mod oracle;
mod suite;

pub use bigmap_core::InterpMode;
pub use builder::ProgramBuilder;
pub use compile::{CompiledProgram, ExecRecording, SnapshotOutcome};
pub use error::TargetError;
pub use generator::{generate_seeds, GeneratorConfig};
pub use interp::{BoundedRun, ExecConfig, ExecOutcome, Interpreter, NullSink, TraceSink};
pub use ir::Program;
pub use lafintel::{apply_laf_intel, LafIntelStats};
pub use oracle::{NoveltyOracle, OracleSnapshot, DEFAULT_MAX_PATHS};
pub use suite::BenchmarkSpec;

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the full event trace for determinism and shape assertions.
    #[derive(Default)]
    struct Recorder {
        events: Vec<(u8, usize)>,
    }

    impl TraceSink for Recorder {
        fn on_block(&mut self, global_block: usize) {
            self.events.push((0, global_block));
        }
        fn on_call(&mut self, call_site: usize) {
            self.events.push((1, call_site));
        }
        fn on_return(&mut self) {
            self.events.push((2, 0));
        }
    }

    fn trace(program: &Program, input: &[u8]) -> (Vec<(u8, usize)>, ExecOutcome) {
        let mut recorder = Recorder::default();
        let outcome = Interpreter::new(program).run(input, &mut recorder);
        (recorder.events, outcome)
    }

    #[test]
    fn builder_block_layout_is_pinned() {
        // gate0 test(0), reward(1), gate1 test(2), crash(3), return(4).
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .gate(1, b'B', true)
            .build()
            .unwrap();
        assert_eq!(program.block_count(), 5);
        assert_eq!(program.crash_sites, 1);
        assert_eq!(
            program.static_edge_pairs(),
            vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4)]
        );
    }

    #[test]
    fn builder_rejects_bad_programs() {
        assert_eq!(
            ProgramBuilder::new("").build().unwrap_err(),
            TargetError::EmptyName
        );
        assert_eq!(
            ProgramBuilder::new("m").magic_gate(0, b"", false).build(),
            Err(TargetError::EmptyMagic { site: 0 })
        );
        assert_eq!(
            ProgramBuilder::new("s").switch_gate(0, &[]).build(),
            Err(TargetError::EmptySwitch { site: 0 })
        );
    }

    #[test]
    fn outcomes_cover_ok_crash_hang() {
        let program = ProgramBuilder::new("o")
            .gate(0, b'C', true)
            .hang_gate(1, b'H')
            .build()
            .unwrap();
        assert_eq!(trace(&program, b"xx").1, ExecOutcome::Ok);
        assert_eq!(
            trace(&program, b"Cx").1,
            ExecOutcome::Crash {
                site: 0,
                stack: vec![]
            }
        );
        assert_eq!(trace(&program, b"xH").1, ExecOutcome::Hang);
    }

    #[test]
    fn empty_input_fails_every_guard() {
        let program = ProgramBuilder::new("e")
            .gate(0, 0, true)
            .loop_gate(1, 8)
            .build()
            .unwrap();
        let (events, outcome) = trace(&program, b"");
        assert_eq!(outcome, ExecOutcome::Ok);
        // Guard test, loop head, return — no reward, body or crash blocks.
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn loop_trip_count_follows_the_input_byte() {
        let program = ProgramBuilder::new("l").loop_gate(0, 10).build().unwrap();
        let head_visits = |byte: u8| {
            trace(&program, &[byte])
                .0
                .iter()
                .filter(|e| *e == &(0u8, 0usize))
                .count()
        };
        assert_eq!(head_visits(0), 1);
        assert_eq!(head_visits(3), 4); // 3 % 10 iterations re-visit the head
        assert_eq!(head_visits(13), 4);
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let config = GeneratorConfig {
            seed: 42,
            crash_sites: 3,
            hang_sites: 2,
            ..Default::default()
        };
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert_eq!(a.validate(), Ok(()));
        assert_eq!(a.crash_sites, 3);
        assert_eq!(a.hang_sites, 2);
        assert!(a.call_sites >= config.functions - 1);
        let (_, indirect) = a.static_edge_pairs_classified();
        assert!(!indirect.is_empty(), "calls must produce return edges");
    }

    #[test]
    fn generator_rejects_bad_configs() {
        let bad = GeneratorConfig {
            magic_gate_ratio: 1.5,
            ..Default::default()
        };
        assert_eq!(
            bad.validate(),
            Err(TargetError::InvalidConfig {
                field: "magic_gate_ratio",
                expected: "a fraction in 0.0..=1.0",
            })
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let program = GeneratorConfig {
            seed: 7,
            crash_sites: 2,
            ..Default::default()
        }
        .generate();
        for input in [&b""[..], b"abc", &[0xFF; 64], &[0x20; 48]] {
            assert_eq!(trace(&program, input), trace(&program, input));
        }
    }

    #[test]
    fn laf_intel_preserves_behaviour_and_splits_compares() {
        let plain = ProgramBuilder::new("magic")
            .magic_gate(2, b"K3Y!", true)
            .switch_gate(0, b"abc")
            .build()
            .unwrap();
        let (laf, stats) = apply_laf_intel(&plain);
        assert_eq!(stats.comparisons_split, 1);
        assert_eq!(stats.switches_deconstructed, 1);
        // 4-byte magic → 32 bit-prefix rungs (net +31); 3-arm switch →
        // net +2.
        assert_eq!(stats.blocks_added, 31 + 2);
        assert_eq!(laf.block_count(), plain.block_count() + stats.blocks_added);
        assert_eq!(laf.validate(), Ok(()));
        // Outcomes agree on crashing and non-crashing inputs alike.
        for input in [&b"xxK3Y!"[..], b"axK3Y!", b"cxxxxx", b"zzzzzz", b""] {
            assert_eq!(trace(&plain, input).1, trace(&laf, input).1);
        }
        // The laf version has no multi-byte compares left to extract.
        assert_eq!(plain.extract_dictionary(), vec![b"K3Y!".to_vec()]);
        assert!(laf.extract_dictionary().is_empty());
    }

    #[test]
    fn dictionary_preserves_order_and_dedups() {
        let program = ProgramBuilder::new("d")
            .magic_gate(0, b"one", false)
            .magic_gate(4, b"two", false)
            .magic_gate(8, b"one", false)
            .build()
            .unwrap();
        assert_eq!(
            program.extract_dictionary(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
    }

    #[test]
    fn crash_stack_reflects_call_chain() {
        let program = GeneratorConfig {
            seed: 1234,
            functions: 5,
            gates_per_function: 6,
            crash_sites: 4,
            crash_guard_width: 1,
            ..Default::default()
        }
        .generate();
        // Hunt for a crashing input; the guard ladder is width 1 so a
        // byte sweep over constant inputs finds one quickly.
        let crash = (0u8..=255)
            .map(|byte| trace(&program, &[byte; 48]).1)
            .find(|outcome| outcome.is_crash());
        if let Some(ExecOutcome::Crash { site, stack }) = crash {
            assert!(site < program.crash_sites);
            for call_site in stack {
                assert!(call_site < program.call_sites);
            }
        }
    }

    #[test]
    fn suite_covers_table_ii() {
        assert_eq!(BenchmarkSpec::all().len(), 19);
        assert_eq!(BenchmarkSpec::table_ii().len(), 19);
        assert_eq!(BenchmarkSpec::figure3().len(), 6);
        assert!(BenchmarkSpec::llvm().len() >= 6);
        assert!(BenchmarkSpec::by_name("zlib").is_some());
        assert!(BenchmarkSpec::by_name("instcombine").is_some());
        assert!(BenchmarkSpec::by_name("nonesuch").is_none());
        assert_eq!(BenchmarkSpec::all().first().unwrap().name, "zlib");
        assert_eq!(BenchmarkSpec::all().last().unwrap().name, "instcombine");
    }

    #[test]
    fn suite_density_scales_static_edges() {
        let spec = BenchmarkSpec::by_name("sqlite3").unwrap();
        let small = spec.build(0.02);
        let large = spec.build(0.2);
        assert!(large.static_edge_count() > 4 * small.static_edge_count());
        assert!(large.static_edge_pairs().len() > 5_000);
        // Same spec and density → identical program.
        assert_eq!(spec.build(0.02), small);
    }

    #[test]
    fn generated_seeds_do_not_crash_the_target() {
        for name in ["gvn", "instcombine", "harfbuzz"] {
            let spec = BenchmarkSpec::by_name(name).unwrap();
            let program = spec.build(0.02);
            let seeds = spec.build_seeds(&program, 12);
            assert_eq!(seeds.len(), 12);
            for seed in &seeds {
                assert!(!seed.is_empty());
                assert!(trace(&program, seed).1.is_ok());
            }
        }
    }

    #[test]
    fn exact_budget_completion_is_ok_not_hang() {
        // Regression guard for the step-budget boundary: an execution
        // that finishes on exactly the last budgeted step must classify
        // Ok, not Hang — an off-by-one here would misroute inputs to the
        // hang map and poison selective-tracing re-trace decisions.
        let programs = [
            ProgramBuilder::new("straight")
                .gate(0, b'A', false)
                .gate(1, b'B', false)
                .build()
                .unwrap(),
            ProgramBuilder::new("loopy")
                .loop_gate(0, 10)
                .build()
                .unwrap(),
        ];
        for program in &programs {
            for input in [&b""[..], b"AB", b"A?", &[7u8]] {
                let interp = Interpreter::new(program);
                let generous = interp.run_bounded(input, &mut NullSink, 1_000_000);
                assert!(generous.outcome.is_ok());
                let steps = generous.steps;

                // Budget == steps actually needed: completes, Ok.
                let exact = interp.run_bounded(input, &mut NullSink, steps);
                assert_eq!(exact.outcome, ExecOutcome::Ok, "exact budget must be Ok");
                assert_eq!(exact.steps, steps);

                // One step short: must be Hang, with the budget drained.
                let short = interp.run_bounded(input, &mut NullSink, steps - 1);
                assert_eq!(short.outcome, ExecOutcome::Hang);
                assert!(!short.planted_hang);
                assert_eq!(short.steps, steps - 1);
            }
        }
    }

    #[test]
    fn fast_path_boundary_matches_traced_path() {
        // run_fast must agree with run_bounded on outcome and step
        // accounting at the exact-budget boundary (and everywhere else).
        let program = ProgramBuilder::new("par")
            .gate(0, b'Q', false)
            .loop_gate(1, 6)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        let mut oracle = NoveltyOracle::new(program.block_count());
        for input in [&b"Q\x05"[..], b"??", b""] {
            let traced = interp.run_bounded(input, &mut NullSink, 1_000_000);
            for budget in [traced.steps - 1, traced.steps, traced.steps + 1] {
                let slow = interp.run_bounded(input, &mut NullSink, budget);
                let fast = interp.run_fast_bounded(input, &mut oracle, budget);
                assert_eq!(slow, fast, "speeds diverge at budget {budget}");
            }
        }
    }

    #[test]
    fn step_budget_bounds_every_execution() {
        let program = ProgramBuilder::new("tiny")
            .loop_gate(0, 200)
            .loop_gate(1, 200)
            .build()
            .unwrap();
        let exec = ExecConfig {
            max_steps: 10,
            ..Default::default()
        };
        let outcome = Interpreter::with_config(&program, exec).run(&[199, 199], &mut NullSink);
        assert_eq!(outcome, ExecOutcome::Hang);
    }
}
