//! The laf-intel IR-to-IR transform: split roadblock comparisons so the
//! coverage map sees a gradient instead of a cliff.
//!
//! Mirrors the LLVM passes of laf-intel / AFL++'s `AFL_LLVM_LAF_ALL`:
//! K-byte all-at-once compares become cascades of 8·K sub-byte compares
//! (cumulative bit-prefix rungs per magic byte — every solved bit prefix
//! is a fresh block, i.e. fresh coverage feedback), and switches are
//! deconstructed into if-else chains. The
//! transform multiplies the program's static edge population — exactly the
//! map pressure BigMap's large maps are built to absorb.

use crate::ir::{Block, BlockKind, FunctionInfo, Program};

/// What [`apply_laf_intel`] did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LafIntelStats {
    /// Multi-byte compares split into single-byte cascades.
    pub comparisons_split: usize,
    /// Switches deconstructed into if-else chains.
    pub switches_deconstructed: usize,
    /// Net new basic blocks introduced by the transform.
    pub blocks_added: usize,
}

/// Apply the laf-intel transform, returning the rewritten program and the
/// transform statistics. The input program is untouched; crash sites, hang
/// sites and call structure are preserved, only comparison shapes change.
///
/// ```
/// use bigmap_target::{apply_laf_intel, ProgramBuilder};
///
/// let plain = ProgramBuilder::new("roadblock")
///     .magic_gate(0, b"MAGIC", true)
///     .build()
///     .unwrap();
/// let (laf, stats) = apply_laf_intel(&plain);
/// assert_eq!(stats.comparisons_split, 1);
/// assert_eq!(laf.block_count(), plain.block_count() + stats.blocks_added);
/// ```
pub fn apply_laf_intel(program: &Program) -> (Program, LafIntelStats) {
    let mut stats = LafIntelStats::default();

    // Pass 1: the new starting index of every old block.
    let mut new_index = Vec::with_capacity(program.blocks.len());
    let mut cursor = 0usize;
    for block in &program.blocks {
        new_index.push(cursor);
        cursor += match &block.kind {
            BlockKind::MagicGuard { values, .. } => 8 * values.len(),
            BlockKind::Switch { arms, .. } => arms.len(),
            _ => 1,
        };
    }

    // Pass 2: emit rewritten blocks with successors remapped.
    let mut blocks = Vec::with_capacity(cursor);
    for (old, block) in program.blocks.iter().enumerate() {
        let function = block.function;
        match &block.kind {
            BlockKind::MagicGuard {
                offset,
                values,
                taken,
                fallthrough,
            } => {
                // Each magic byte becomes eight cascaded rungs — cumulative
                // MSB-first prefix masks (0x80, 0xC0, … 0xFE) capped by a
                // full-byte equality — so the coverage map rewards every
                // solved bit prefix, not just whole matched bytes. The
                // cascade is *conjunctive*: reaching rung k proves every
                // earlier bit still matches, which is what lets a campaign
                // accumulate progress in a single corpus entry rather than
                // scattering solved bits across the queue. Real laf-intel
                // stops at 8-bit granularity and lets campaigns grind out
                // each byte over millions of executions; this substrate
                // compresses those dynamics to smoke-scale exec budgets, so
                // the split granularity scales down with it: one
                // coverage-visible rung per constrained bit, each reachable
                // from its predecessor by a single bit flip.
                let base = new_index[old];
                let bytes = values.len();
                for (i, value) in values.iter().enumerate() {
                    let byte_base = base + 8 * i;
                    for bit in 0..7u8 {
                        let mask = 0xFFu8 << (7 - bit);
                        blocks.push(Block {
                            kind: BlockKind::MaskGuard {
                                offset: offset + i,
                                mask,
                                value: value & mask,
                                taken: byte_base + bit as usize + 1,
                                fallthrough: new_index[*fallthrough],
                            },
                            function,
                        });
                    }
                    blocks.push(Block {
                        kind: BlockKind::ByteGuard {
                            offset: offset + i,
                            value: *value,
                            taken: if i + 1 < bytes {
                                base + 8 * (i + 1)
                            } else {
                                new_index[*taken]
                            },
                            fallthrough: new_index[*fallthrough],
                        },
                        function,
                    });
                }
                stats.comparisons_split += 1;
                stats.blocks_added += 8 * bytes - 1;
            }
            BlockKind::Switch {
                offset,
                arms,
                default,
            } => {
                // If-else chain: test each case in order, falling through
                // to the default when none match.
                let base = new_index[old];
                let tests = arms.len();
                for (i, (value, arm)) in arms.iter().enumerate() {
                    blocks.push(Block {
                        kind: BlockKind::ByteGuard {
                            offset: *offset,
                            value: *value,
                            taken: new_index[*arm],
                            fallthrough: if i + 1 < tests {
                                base + i + 1
                            } else {
                                new_index[*default]
                            },
                        },
                        function,
                    });
                }
                stats.switches_deconstructed += 1;
                stats.blocks_added += tests - 1;
            }
            other => {
                let kind = match other {
                    BlockKind::Jump { next } => BlockKind::Jump {
                        next: new_index[*next],
                    },
                    BlockKind::ByteGuard {
                        offset,
                        value,
                        taken,
                        fallthrough,
                    } => BlockKind::ByteGuard {
                        offset: *offset,
                        value: *value,
                        taken: new_index[*taken],
                        fallthrough: new_index[*fallthrough],
                    },
                    BlockKind::MaskGuard {
                        offset,
                        mask,
                        value,
                        taken,
                        fallthrough,
                    } => BlockKind::MaskGuard {
                        offset: *offset,
                        mask: *mask,
                        value: *value,
                        taken: new_index[*taken],
                        fallthrough: new_index[*fallthrough],
                    },
                    BlockKind::LoopHead {
                        offset,
                        max_iters,
                        body,
                        exit,
                    } => BlockKind::LoopHead {
                        offset: *offset,
                        max_iters: *max_iters,
                        body: new_index[*body],
                        exit: new_index[*exit],
                    },
                    BlockKind::Call {
                        function: callee,
                        call_site,
                        next,
                    } => BlockKind::Call {
                        function: *callee,
                        call_site: *call_site,
                        next: new_index[*next],
                    },
                    BlockKind::Crash { site } => BlockKind::Crash { site: *site },
                    BlockKind::Hang => BlockKind::Hang,
                    BlockKind::Return => BlockKind::Return,
                    BlockKind::MagicGuard { .. } | BlockKind::Switch { .. } => unreachable!(),
                };
                blocks.push(Block { kind, function });
            }
        }
    }

    let functions = program
        .functions
        .iter()
        .map(|f| FunctionInfo {
            entry: new_index[f.entry],
            ret: new_index[f.ret],
        })
        .collect();

    let laf = Program {
        name: program.name.clone(),
        call_sites: program.call_sites,
        crash_sites: program.crash_sites,
        hang_sites: program.hang_sites,
        blocks,
        functions,
    };
    debug_assert_eq!(laf.validate(), Ok(()));
    (laf, stats)
}
