//! The Table II benchmark suite: named program shapes matched to the
//! paper's evaluation targets.
//!
//! Each [`BenchmarkSpec`] carries the published corpus/edge
//! characteristics of one evaluation target (eight FuzzBench-style
//! libraries plus eleven `llvm-opt-fuzzer` pass harnesses) and knows how
//! to instantiate a synthetic program of matching shape at any density —
//! `build(1.0)` approximates the full static edge count, `build(0.05)` a
//! twenty-times-smaller stand-in for quick experiments.

use crate::generator::{generate_seeds, GeneratorConfig};
use crate::ir::Program;

/// One row of the paper's Table II: a named benchmark with its seed-corpus
/// size and static/discovered edge characteristics, plus everything needed
/// to build a synthetic program of the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `"zlib"`, `"instcombine"`).
    pub name: &'static str,
    /// Version fuzzed in the paper's evaluation.
    pub version: &'static str,
    /// Seed-corpus size used in the paper.
    pub seeds: usize,
    /// Edges discovered in the paper's 24 h AFL runs.
    pub discovered_edges: usize,
    /// Static instrumented edge count of the real target.
    pub static_edges: usize,
    /// True for `llvm-opt-fuzzer` pass harnesses (magic-heavy,
    /// switch-heavy, crash-bearing shapes).
    pub llvm: bool,
}

/// All 19 benchmarks, zlib through instcombine.
const TABLE_II: [BenchmarkSpec; 19] = [
    BenchmarkSpec {
        name: "zlib",
        version: "1.2.11",
        seeds: 1,
        discovered_edges: 1_630,
        static_edges: 4_500,
        llvm: false,
    },
    BenchmarkSpec {
        name: "libpng",
        version: "1.6.38",
        seeds: 1,
        discovered_edges: 2_190,
        static_edges: 6_550,
        llvm: false,
    },
    BenchmarkSpec {
        name: "proj4",
        version: "8.1.0",
        seeds: 44,
        discovered_edges: 4_400,
        static_edges: 9_000,
        llvm: false,
    },
    BenchmarkSpec {
        name: "harfbuzz",
        version: "2.8.1",
        seeds: 58,
        discovered_edges: 8_900,
        static_edges: 18_100,
        llvm: false,
    },
    BenchmarkSpec {
        name: "bloaty",
        version: "1.1",
        seeds: 94,
        discovered_edges: 12_300,
        static_edges: 47_000,
        llvm: false,
    },
    BenchmarkSpec {
        name: "sqlite3",
        version: "3.36.0",
        seeds: 1,
        discovered_edges: 16_000,
        static_edges: 50_000,
        llvm: false,
    },
    BenchmarkSpec {
        name: "openssl",
        version: "1.1.1",
        seeds: 2,
        discovered_edges: 9_900,
        static_edges: 64_000,
        llvm: false,
    },
    BenchmarkSpec {
        name: "php",
        version: "7.4.21",
        seeds: 2,
        discovered_edges: 17_600,
        static_edges: 107_000,
        llvm: false,
    },
    BenchmarkSpec {
        name: "mem2reg",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 18_700,
        static_edges: 84_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "sccp",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 19_200,
        static_edges: 86_500,
        llvm: true,
    },
    BenchmarkSpec {
        name: "earlycse",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 20_100,
        static_edges: 88_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "loop-rotate",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 19_800,
        static_edges: 89_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "instsimplify",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 22_800,
        static_edges: 90_500,
        llvm: true,
    },
    BenchmarkSpec {
        name: "loop-unroll",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 20_900,
        static_edges: 91_500,
        llvm: true,
    },
    BenchmarkSpec {
        name: "licm",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 21_500,
        static_edges: 92_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "indvars",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 23_400,
        static_edges: 94_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "gvn",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 24_000,
        static_edges: 96_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "jump-threading",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 22_100,
        static_edges: 98_000,
        llvm: true,
    },
    BenchmarkSpec {
        name: "instcombine",
        version: "llvm-12",
        seeds: 5_598,
        discovered_edges: 30_000,
        static_edges: 120_000,
        llvm: true,
    },
];

impl BenchmarkSpec {
    /// Every benchmark in Table II.
    pub fn all() -> Vec<BenchmarkSpec> {
        TABLE_II.to_vec()
    }

    /// Alias for [`BenchmarkSpec::all`], named after the paper's table.
    pub fn table_ii() -> Vec<BenchmarkSpec> {
        Self::all()
    }

    /// The six benchmarks of the paper's Figure 3 runtime-composition
    /// study.
    pub fn figure3() -> Vec<BenchmarkSpec> {
        ["libpng", "sqlite3", "gvn", "bloaty", "openssl", "php"]
            .iter()
            .map(|name| Self::by_name(name).expect("figure 3 benchmark in Table II"))
            .collect()
    }

    /// The `llvm-opt-fuzzer` pass harnesses (the crash-bearing subset used
    /// by the unique-crash and composition studies).
    pub fn llvm() -> Vec<BenchmarkSpec> {
        TABLE_II.iter().filter(|spec| spec.llvm).copied().collect()
    }

    /// Look up one benchmark by its Table II name.
    pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
        TABLE_II.iter().find(|spec| spec.name == name).copied()
    }

    /// Build a synthetic program of this benchmark's shape at the given
    /// density: the generated static edge count is approximately
    /// `static_edges * scale`. Deterministic per `(spec, scale)`.
    pub fn build(&self, scale: f64) -> Program {
        let scale = if scale.is_finite() {
            scale.clamp(0.0005, 1.0)
        } else {
            0.05
        };
        // ~3.2 static edges per comparison site on average (branch, reward
        // and fall-through edges, plus call/switch/loop extras).
        let sites = ((self.static_edges as f64 * scale / 3.2) as usize).max(16);
        let functions = (sites / 26).clamp(2, 64);
        let gates_per_function = (sites / functions).max(2);
        GeneratorConfig {
            name: format!("{}-{}", self.name, self.version),
            seed: self.stable_seed(),
            functions,
            gates_per_function,
            magic_gate_ratio: if self.llvm { 0.30 } else { 0.12 },
            switch_ratio: if self.llvm { 0.15 } else { 0.08 },
            loop_ratio: 0.12,
            crash_sites: if self.llvm { (sites / 50).max(4) } else { 1 },
            hang_sites: 0,
            crash_guard_width: 2,
            max_magic_len: 4,
            offset_range: 64,
            seed_len: 64,
        }
        .generate()
    }

    /// Synthesise a seed corpus of `n` inputs for a program built from this
    /// spec (see [`generate_seeds`]). Deterministic per `(spec, program,
    /// n)`.
    pub fn build_seeds(&self, program: &Program, n: usize) -> Vec<Vec<u8>> {
        generate_seeds(program, n, self.stable_seed() ^ 0x5EED_C0DE)
    }

    /// Stable per-benchmark RNG seed (FNV-1a over the name).
    fn stable_seed(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in self.name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}
