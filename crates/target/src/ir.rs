//! Program IR: a flat array of basic blocks grouped into functions.
//!
//! The IR models exactly what a coverage-guided fuzzer can observe about a
//! compiled target: basic blocks with static successor edges, byte-guarded
//! branches, multi-byte compare ladders, switches, bounded loops, guarded
//! calls between functions, and crash / hang sites. Block indices are
//! *global* across the whole program — they are the values an
//! instrumentation pass assigns random map IDs to, and the values the
//! interpreter reports to a [`crate::TraceSink`].

use crate::error::TargetError;

/// Sorted, deduplicated list of static `(from, to)` block-index edges.
pub type EdgePairs = Vec<(usize, usize)>;

/// One basic block. `kind` carries the block's behaviour and its static
/// successors (as global block indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Block {
    /// Behaviour + successors.
    pub(crate) kind: BlockKind,
    /// Function this block belongs to (index into `Program::functions`).
    pub(crate) function: usize,
}

/// Behaviour of a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Unconditional fall-through to `next`.
    Jump {
        /// Successor block.
        next: usize,
    },
    /// Single-byte guard: `input[offset] == value` branches to `taken`,
    /// otherwise to `fallthrough`. A read past the end of the input fails
    /// the guard — synthetic targets length-check like real parsers do.
    ByteGuard {
        /// Input offset the guard reads.
        offset: usize,
        /// Byte value the guard compares against.
        value: u8,
        /// Successor when the comparison holds.
        taken: usize,
        /// Successor when it does not.
        fallthrough: usize,
    },
    /// Masked single-byte guard: `input[offset] & mask == value` branches
    /// to `taken`, otherwise to `fallthrough`. Produced by
    /// [`crate::apply_laf_intel`] when it splits a byte equality into
    /// bit-prefix rungs; an out-of-range read fails the guard.
    MaskGuard {
        /// Input offset the guard reads.
        offset: usize,
        /// Bit mask applied to the input byte before comparing.
        mask: u8,
        /// Expected value of the masked byte (already masked).
        value: u8,
        /// Successor when the masked comparison holds.
        taken: usize,
        /// Successor when it does not.
        fallthrough: usize,
    },
    /// K-byte all-at-once compare: `input[offset + i] == values[i]` for all
    /// `i` (any out-of-range byte fails the compare). This is the roadblock
    /// construct laf-intel splits into a cascade of sub-byte guards.
    MagicGuard {
        /// Offset of the first compared byte.
        offset: usize,
        /// The magic byte string.
        values: Vec<u8>,
        /// Successor when every byte matches.
        taken: usize,
        /// Successor when any byte differs.
        fallthrough: usize,
    },
    /// Multi-way branch on a single input byte. Each arm is `(case value,
    /// arm block)`; a non-matching byte goes to `default`.
    Switch {
        /// Input offset the switch scrutinises.
        offset: usize,
        /// Case arms as `(value, arm block)` pairs.
        arms: Vec<(u8, usize)>,
        /// Successor when no case matches.
        default: usize,
    },
    /// Bounded loop head. Iteration count is `input[offset] % max_iters`
    /// (zero when `max_iters` is 0 or `offset` is out of range); each
    /// iteration
    /// visits `body` and re-visits the head, then control leaves to `exit`.
    LoopHead {
        /// Input offset controlling the iteration count.
        offset: usize,
        /// Exclusive upper bound on iterations.
        max_iters: u8,
        /// Loop body block.
        body: usize,
        /// Successor after the final iteration.
        exit: usize,
    },
    /// Call site: transfers control to `function`'s entry block, then
    /// resumes at `next`. `call_site` is the dense call-site index reported
    /// to [`crate::TraceSink::on_call`].
    Call {
        /// Callee function index.
        function: usize,
        /// Dense call-site index (`0..Program::call_sites`).
        call_site: usize,
        /// Resume block in the caller.
        next: usize,
    },
    /// Crash site: execution terminates with
    /// [`crate::ExecOutcome::Crash`]. No static out-edges.
    Crash {
        /// Dense crash-site index (`0..Program::crash_sites`).
        site: usize,
    },
    /// Hang site: models an unbounded loop. The interpreter's step budget
    /// is exhausted immediately and the run reports
    /// [`crate::ExecOutcome::Hang`]. No static out-edges.
    Hang,
    /// Function return. Return edges are attributed to call sites (they
    /// depend on the dynamic return address), not to this block.
    Return,
}

/// Per-function bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FunctionInfo {
    /// Entry block (global index).
    pub(crate) entry: usize,
    /// The function's single return block (global index).
    pub(crate) ret: usize,
}

/// A synthetic instrumented target: a named control-flow graph ready to be
/// executed by an [`crate::Interpreter`] and instrumented by a coverage map.
///
/// Programs are immutable once built (by [`crate::ProgramBuilder`],
/// [`crate::GeneratorConfig::generate`] or [`crate::apply_laf_intel`]);
/// execution is fully deterministic in the input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable program name.
    pub name: String,
    /// Number of call sites (dense indices `0..call_sites` reported via
    /// [`crate::TraceSink::on_call`]).
    pub call_sites: usize,
    /// Number of planted crash sites (dense indices `0..crash_sites`).
    pub crash_sites: usize,
    /// Number of planted hang sites.
    pub hang_sites: usize,
    pub(crate) blocks: Vec<Block>,
    pub(crate) functions: Vec<FunctionInfo>,
}

impl Program {
    /// Total number of basic blocks. Instrumentation assigns one map ID per
    /// block, so this is the `blocks` argument to an instrumentation pass.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of functions (function 0 is the entry point).
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Paper-style static edge count: every direct CFG edge, plus one
    /// return edge per call site. [`Program::static_edge_pairs`] can be
    /// larger because a return edge fans out per callee return block.
    pub fn static_edge_count(&self) -> usize {
        let (direct, _) = self.static_edge_pairs_classified();
        let calls = self
            .blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::Call { .. }))
            .count();
        direct.len() + calls
    }

    /// All static `(from, to)` block-index pairs, sorted and deduplicated.
    /// Includes both direct branch edges and call/return edges.
    pub fn static_edge_pairs(&self) -> Vec<(usize, usize)> {
        let (mut direct, indirect) = self.static_edge_pairs_classified();
        direct.extend(indirect);
        direct.sort_unstable();
        direct.dedup();
        direct
    }

    /// Static edges split into `(direct, indirect)`:
    ///
    /// * *direct* — ordinary branch, fall-through, switch and call-entry
    ///   edges whose target is statically known;
    /// * *indirect* — return edges `(callee return block, caller resume
    ///   block)`, which at runtime depend on the return address and which
    ///   guard-style instrumentation cannot attribute statically.
    ///
    /// Both lists are sorted and deduplicated, and they are disjoint.
    pub fn static_edge_pairs_classified(&self) -> (EdgePairs, EdgePairs) {
        let mut direct = Vec::new();
        let mut indirect = Vec::new();
        for (index, block) in self.blocks.iter().enumerate() {
            match &block.kind {
                BlockKind::Jump { next } => direct.push((index, *next)),
                BlockKind::ByteGuard {
                    taken, fallthrough, ..
                }
                | BlockKind::MaskGuard {
                    taken, fallthrough, ..
                }
                | BlockKind::MagicGuard {
                    taken, fallthrough, ..
                } => {
                    direct.push((index, *taken));
                    direct.push((index, *fallthrough));
                }
                BlockKind::Switch { arms, default, .. } => {
                    for (_, arm) in arms {
                        direct.push((index, *arm));
                    }
                    direct.push((index, *default));
                }
                BlockKind::LoopHead { body, exit, .. } => {
                    direct.push((index, *body));
                    direct.push((index, *exit));
                }
                BlockKind::Call { function, next, .. } => {
                    direct.push((index, self.functions[*function].entry));
                    indirect.push((self.functions[*function].ret, *next));
                }
                BlockKind::Crash { .. } | BlockKind::Hang | BlockKind::Return => {}
            }
        }
        direct.sort_unstable();
        direct.dedup();
        indirect.sort_unstable();
        indirect.dedup();
        (direct, indirect)
    }

    /// Extract a fuzzing dictionary: the byte strings of every multi-byte
    /// compare in the program, in block order, deduplicated. This mirrors
    /// what AFL's `AFL_LLVM_DICT2FILE` / libFuzzer's `-dict` pipelines pull
    /// out of `memcmp`-style call sites.
    pub fn extract_dictionary(&self) -> Vec<Vec<u8>> {
        let mut dictionary: Vec<Vec<u8>> = Vec::new();
        for block in &self.blocks {
            if let BlockKind::MagicGuard { values, .. } = &block.kind {
                if !dictionary.iter().any(|t| t == values) {
                    dictionary.push(values.clone());
                }
            }
        }
        dictionary
    }

    /// Structural validation: every successor, callee and function index is
    /// in range, and the program has at least one function with well-formed
    /// entry and return blocks.
    pub fn validate(&self) -> Result<(), TargetError> {
        if self.name.is_empty() {
            return Err(TargetError::EmptyName);
        }
        if self.functions.is_empty() {
            return Err(TargetError::NoFunctions);
        }
        for (f, info) in self.functions.iter().enumerate() {
            if info.entry >= self.blocks.len() || info.ret >= self.blocks.len() {
                return Err(TargetError::MalformedFunction { function: f });
            }
        }
        let check = |block: usize, successor: usize| {
            if successor >= self.blocks.len() {
                Err(TargetError::DanglingBlock { block, successor })
            } else {
                Ok(())
            }
        };
        for (index, block) in self.blocks.iter().enumerate() {
            match &block.kind {
                BlockKind::Jump { next } => check(index, *next)?,
                BlockKind::ByteGuard {
                    taken, fallthrough, ..
                }
                | BlockKind::MaskGuard {
                    taken, fallthrough, ..
                } => {
                    check(index, *taken)?;
                    check(index, *fallthrough)?;
                }
                BlockKind::MagicGuard {
                    values,
                    taken,
                    fallthrough,
                    ..
                } => {
                    if values.is_empty() {
                        return Err(TargetError::EmptyMagic { site: index });
                    }
                    check(index, *taken)?;
                    check(index, *fallthrough)?;
                }
                BlockKind::Switch { arms, default, .. } => {
                    if arms.is_empty() {
                        return Err(TargetError::EmptySwitch { site: index });
                    }
                    for (_, arm) in arms {
                        check(index, *arm)?;
                    }
                    check(index, *default)?;
                }
                BlockKind::LoopHead { body, exit, .. } => {
                    check(index, *body)?;
                    check(index, *exit)?;
                }
                BlockKind::Call { function, next, .. } => {
                    if *function >= self.functions.len() {
                        return Err(TargetError::DanglingFunction {
                            block: index,
                            function: *function,
                        });
                    }
                    check(index, *next)?;
                }
                BlockKind::Crash { .. } | BlockKind::Hang | BlockKind::Return => {}
            }
        }
        Ok(())
    }
}
