//! Deterministic program interpreter with trace-sink instrumentation.
//!
//! The interpreter is the stand-in for running an AFL-instrumented binary:
//! each executed basic block is reported to a [`TraceSink`] exactly the way
//! `afl-clang-fast`'s shim writes to the shared-memory map. Execution is a
//! pure function of `(program, input, config)` — there is no RNG and no
//! wall clock — so replaying an input always reproduces the identical
//! trace, and hang detection is *step-bounded* rather than time-bounded,
//! keeping exec budgets exact.

use crate::ir::{BlockKind, Program};
use crate::oracle::NoveltyOracle;

/// Receives the dynamic trace of one execution.
///
/// Implementations map these events onto coverage metrics: `on_block`
/// drives edge/block/N-gram metrics, `on_call`/`on_return` drive
/// context-sensitive metrics.
pub trait TraceSink {
    /// A basic block (global index) was executed.
    fn on_block(&mut self, global_block: usize);
    /// A call site (dense index) transferred control to a callee.
    fn on_call(&mut self, call_site: usize);
    /// Control returned from the most recent call.
    fn on_return(&mut self);
}

/// A [`TraceSink`] that discards every event — useful for crash
/// reproduction and throughput probes where only the
/// [`ExecOutcome`] matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_block(&mut self, _global_block: usize) {}
    fn on_call(&mut self, _call_site: usize) {}
    fn on_return(&mut self) {}
}

/// Execution limits and cost model for the interpreter.
///
/// Construct with struct-update syntax over [`Default`]:
///
/// ```
/// use bigmap_target::ExecConfig;
/// let exec = ExecConfig { max_steps: 50_000, ..Default::default() };
/// assert!(exec.max_steps < ExecConfig::default().max_steps);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Step budget per execution; one step is charged per executed block.
    /// A program that exhausts it — in particular any planted hang site,
    /// which drains the budget immediately — reports [`ExecOutcome::Hang`].
    /// Step-bounding (instead of a wall-clock timeout) keeps campaigns
    /// deterministic and lets exec-count budgets stay exact.
    pub max_steps: u64,
    /// Synthetic extra work units burned per executed block, for modelling
    /// slower targets in throughput experiments. 0 disables the spin.
    pub work_per_block: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 1_000_000,
            work_per_block: 0,
        }
    }
}

/// Result of one interpreted execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The program ran to completion.
    Ok,
    /// A planted crash site fired.
    Crash {
        /// Dense crash-site index (`0..Program::crash_sites`).
        site: usize,
        /// Call-site indices active when the crash fired, outermost first —
        /// the synthetic call stack crash triage deduplicates on.
        stack: Vec<usize>,
    },
    /// The step budget was exhausted (planted hang site or runaway loop).
    Hang,
}

impl ExecOutcome {
    /// True for [`ExecOutcome::Crash`].
    pub fn is_crash(&self) -> bool {
        matches!(self, ExecOutcome::Crash { .. })
    }

    /// True for [`ExecOutcome::Hang`].
    pub fn is_hang(&self) -> bool {
        matches!(self, ExecOutcome::Hang)
    }

    /// True for [`ExecOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecOutcome::Ok)
    }
}

/// Executes a [`Program`] over concrete inputs, reporting each executed
/// block to a [`TraceSink`].
///
/// The interpreter borrows the program for its own lifetime; it holds no
/// mutable state, so one interpreter can serve an entire campaign.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    config: ExecConfig,
}

impl<'p> Interpreter<'p> {
    /// Interpreter with the default [`ExecConfig`].
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            config: ExecConfig::default(),
        }
    }

    /// Interpreter with an explicit [`ExecConfig`].
    pub fn with_config(program: &'p Program, config: ExecConfig) -> Self {
        Interpreter { program, config }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The active execution configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Execute `input`, streaming the block trace into `sink`.
    ///
    /// Deterministic: the same program, config and input always produce the
    /// identical event sequence and outcome.
    pub fn run<S: TraceSink + ?Sized>(&self, input: &[u8], sink: &mut S) -> ExecOutcome {
        self.run_bounded(input, sink, self.config.max_steps).outcome
    }

    /// Execute `input` on the untraced fast path: no coverage-sink
    /// callbacks, only the cheap [`NoveltyOracle`] observing the trace.
    /// After the call, [`NoveltyOracle::provably_seen`] reports whether
    /// this execution can be skipped or must be re-run with full tracing.
    ///
    /// Step accounting, hang classification and the outcome are identical
    /// to [`Interpreter::run`] by construction — the oracle rides the
    /// same [`TraceSink`] stream — so hang-budget calibration behaves the
    /// same in both speeds.
    pub fn run_fast(&self, input: &[u8], oracle: &mut NoveltyOracle) -> BoundedRun {
        self.run_fast_bounded(input, oracle, self.config.max_steps)
    }

    /// [`Interpreter::run_fast`] with an explicit step budget, mirroring
    /// [`Interpreter::run_bounded`].
    pub fn run_fast_bounded(
        &self,
        input: &[u8],
        oracle: &mut NoveltyOracle,
        max_steps: u64,
    ) -> BoundedRun {
        oracle.begin_exec();
        self.run_bounded(input, oracle, max_steps)
    }

    /// [`Interpreter::run`] with an explicit step budget overriding the
    /// configured `max_steps`, reporting the steps actually consumed —
    /// the entry point for AFL-style hang-budget calibration, where the
    /// fuzzer measures seed step counts and then tightens the budget.
    pub fn run_bounded<S: TraceSink + ?Sized>(
        &self,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
    ) -> BoundedRun {
        let mut state = ExecState {
            program: self.program,
            input,
            steps_left: max_steps,
            work_per_block: self.config.work_per_block,
            call_stack: Vec::new(),
        };
        let (outcome, planted_hang) = match state.exec_function(0, sink) {
            Flow::Done => (ExecOutcome::Ok, false),
            Flow::Crash { site, stack } => (ExecOutcome::Crash { site, stack }, false),
            Flow::Hang { planted } => (ExecOutcome::Hang, planted),
        };
        BoundedRun {
            outcome,
            steps: max_steps - state.steps_left,
            planted_hang,
        }
    }
}

/// Result of a [`Interpreter::run_bounded`] execution: the outcome plus
/// the interpreter steps consumed. A planted hang site drains the whole
/// budget, so `steps == max_steps` for those; ordinary completions report
/// the true block count executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedRun {
    /// The target's outcome.
    pub outcome: ExecOutcome,
    /// Interpreter steps (executed blocks) charged against the budget.
    pub steps: u64,
    /// When the outcome is [`ExecOutcome::Hang`]: `true` if a planted
    /// hang site fired, `false` if ordinary execution ran the step budget
    /// dry — the signal hang-budget calibration telemetry keys on.
    pub planted_hang: bool,
}

enum Flow {
    Done,
    Crash { site: usize, stack: Vec<usize> },
    Hang { planted: bool },
}

struct ExecState<'a> {
    program: &'a Program,
    input: &'a [u8],
    steps_left: u64,
    work_per_block: u32,
    call_stack: Vec<usize>,
}

impl ExecState<'_> {
    fn byte_at(&self, offset: usize) -> Option<u8> {
        self.input.get(offset).copied()
    }

    /// Charge one step (plus the configured per-block work). Returns false
    /// when the budget is exhausted.
    fn step(&mut self) -> bool {
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        if self.work_per_block > 0 {
            let mut acc = 0u64;
            for unit in 0..self.work_per_block {
                acc = acc
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(unit as u64);
            }
            std::hint::black_box(acc);
        }
        true
    }

    fn exec_function<S: TraceSink + ?Sized>(&mut self, function: usize, sink: &mut S) -> Flow {
        let mut pc = self.program.functions[function].entry;
        loop {
            if !self.step() {
                return Flow::Hang { planted: false };
            }
            sink.on_block(pc);
            match &self.program.blocks[pc].kind {
                BlockKind::Jump { next } => pc = *next,
                BlockKind::ByteGuard {
                    offset,
                    value,
                    taken,
                    fallthrough,
                } => {
                    pc = if self.byte_at(*offset) == Some(*value) {
                        *taken
                    } else {
                        *fallthrough
                    };
                }
                BlockKind::MaskGuard {
                    offset,
                    mask,
                    value,
                    taken,
                    fallthrough,
                } => {
                    pc = match self.byte_at(*offset) {
                        Some(byte) if byte & *mask == *value => *taken,
                        _ => *fallthrough,
                    };
                }
                BlockKind::MagicGuard {
                    offset,
                    values,
                    taken,
                    fallthrough,
                } => {
                    let matched = values
                        .iter()
                        .enumerate()
                        .all(|(i, v)| self.byte_at(offset + i) == Some(*v));
                    pc = if matched { *taken } else { *fallthrough };
                }
                BlockKind::Switch {
                    offset,
                    arms,
                    default,
                } => {
                    let byte = self.byte_at(*offset);
                    pc = arms
                        .iter()
                        .find(|(value, _)| Some(*value) == byte)
                        .map(|(_, arm)| *arm)
                        .unwrap_or(*default);
                }
                BlockKind::LoopHead {
                    offset,
                    max_iters,
                    body,
                    exit,
                } => {
                    // Unrolled inline: trace is head, (body, head) per
                    // iteration, then the exit — so the back edge's hit
                    // count carries the trip count into the coverage map.
                    let iters = match (self.byte_at(*offset), *max_iters) {
                        (Some(byte), m) if m > 0 => (byte % m) as u32,
                        _ => 0,
                    };
                    for _ in 0..iters {
                        if !self.step() {
                            return Flow::Hang { planted: false };
                        }
                        sink.on_block(*body);
                        if !self.step() {
                            return Flow::Hang { planted: false };
                        }
                        sink.on_block(pc);
                    }
                    pc = *exit;
                }
                BlockKind::Call {
                    function: callee,
                    call_site,
                    next,
                } => {
                    sink.on_call(*call_site);
                    self.call_stack.push(*call_site);
                    match self.exec_function(*callee, sink) {
                        Flow::Done => {}
                        other => return other,
                    }
                    self.call_stack.pop();
                    sink.on_return();
                    pc = *next;
                }
                BlockKind::Crash { site } => {
                    return Flow::Crash {
                        site: *site,
                        stack: self.call_stack.clone(),
                    };
                }
                BlockKind::Hang => {
                    // A planted hang models an unbounded loop: it drains
                    // the remaining step budget at once so campaigns count
                    // the hang without actually stalling.
                    self.steps_left = 0;
                    return Flow::Hang { planted: true };
                }
                BlockKind::Return => return Flow::Done,
            }
        }
    }
}
