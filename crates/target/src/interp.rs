//! Deterministic program interpreter with trace-sink instrumentation.
//!
//! The interpreter is the stand-in for running an AFL-instrumented binary:
//! each executed basic block is reported to a [`TraceSink`] exactly the way
//! `afl-clang-fast`'s shim writes to the shared-memory map. Execution is a
//! pure function of `(program, input, config)` — there is no RNG and no
//! wall clock — so replaying an input always reproduces the identical
//! trace, and hang detection is *step-bounded* rather than time-bounded,
//! keeping exec budgets exact.

use bigmap_core::InterpMode;

use crate::compile::CompiledProgram;
use crate::ir::{BlockKind, Program};
use crate::oracle::NoveltyOracle;

/// Receives the dynamic trace of one execution.
///
/// Implementations map these events onto coverage metrics: `on_block`
/// drives edge/block/N-gram metrics, `on_call`/`on_return` drive
/// context-sensitive metrics.
pub trait TraceSink {
    /// A basic block (global index) was executed.
    fn on_block(&mut self, global_block: usize);
    /// A call site (dense index) transferred control to a callee.
    fn on_call(&mut self, call_site: usize);
    /// Control returned from the most recent call.
    fn on_return(&mut self);
}

/// A [`TraceSink`] that discards every event — useful for crash
/// reproduction and throughput probes where only the
/// [`ExecOutcome`] matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    // inline(always): cross-crate callers monomorphize the engines over
    // this sink; the no-ops must vanish there too (without LTO the
    // un-annotated empty bodies can survive as real calls on the replay
    // and dispatch hot paths).
    #[inline(always)]
    fn on_block(&mut self, _global_block: usize) {}
    #[inline(always)]
    fn on_call(&mut self, _call_site: usize) {}
    #[inline(always)]
    fn on_return(&mut self) {}
}

/// Execution limits and cost model for the interpreter.
///
/// Construct with struct-update syntax over [`Default`]:
///
/// ```
/// use bigmap_target::ExecConfig;
/// let exec = ExecConfig { max_steps: 50_000, ..Default::default() };
/// assert!(exec.max_steps < ExecConfig::default().max_steps);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Step budget per execution; one step is charged per executed block.
    /// A program that exhausts it — in particular any planted hang site,
    /// which drains the budget immediately — reports [`ExecOutcome::Hang`].
    /// Step-bounding (instead of a wall-clock timeout) keeps campaigns
    /// deterministic and lets exec-count budgets stay exact.
    pub max_steps: u64,
    /// Synthetic extra work units burned per executed block, for modelling
    /// slower targets in throughput experiments. 0 disables the spin.
    pub work_per_block: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 1_000_000,
            work_per_block: 0,
        }
    }
}

/// Result of one interpreted execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The program ran to completion.
    Ok,
    /// A planted crash site fired.
    Crash {
        /// Dense crash-site index (`0..Program::crash_sites`).
        site: usize,
        /// Call-site indices active when the crash fired, outermost first —
        /// the synthetic call stack crash triage deduplicates on.
        stack: Vec<usize>,
    },
    /// The step budget was exhausted (planted hang site or runaway loop).
    Hang,
}

impl ExecOutcome {
    /// True for [`ExecOutcome::Crash`].
    pub fn is_crash(&self) -> bool {
        matches!(self, ExecOutcome::Crash { .. })
    }

    /// True for [`ExecOutcome::Hang`].
    pub fn is_hang(&self) -> bool {
        matches!(self, ExecOutcome::Hang)
    }

    /// True for [`ExecOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecOutcome::Ok)
    }
}

/// Executes a [`Program`] over concrete inputs, reporting each executed
/// block to a [`TraceSink`].
///
/// The interpreter borrows the program for its own lifetime; it holds no
/// mutable state, so one interpreter can serve an entire campaign.
///
/// Construction lowers the program into the flattened bytecode engine
/// ([`CompiledProgram`]) and precomputes the tree walker's `Switch`
/// lookup tables; which engine actually executes is an [`InterpMode`]
/// dispatch choice (`BIGMAP_INTERP`, or an explicit
/// [`Interpreter::with_mode`]). All engines are equivalence-proven —
/// same outcomes, same trace-event sequences, same step counts — so the
/// mode never changes campaign trajectories.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    config: ExecConfig,
    mode: InterpMode,
    compiled: CompiledProgram,
    switch_lut: SwitchLut,
}

impl<'p> Interpreter<'p> {
    /// Interpreter with the default [`ExecConfig`]; the engine comes from
    /// the `BIGMAP_INTERP` environment knob (default: `auto`).
    pub fn new(program: &'p Program) -> Self {
        Self::with_config(program, ExecConfig::default())
    }

    /// Interpreter with an explicit [`ExecConfig`]; the engine comes from
    /// the `BIGMAP_INTERP` environment knob (default: `auto`).
    pub fn with_config(program: &'p Program, config: ExecConfig) -> Self {
        Self::with_mode(program, config, bigmap_core::env::interp_request())
    }

    /// Interpreter with an explicit engine mode, bypassing the
    /// environment knob — campaigns use this for their
    /// `CampaignConfig` override.
    pub fn with_mode(program: &'p Program, config: ExecConfig, mode: InterpMode) -> Self {
        Interpreter {
            program,
            config,
            mode,
            compiled: CompiledProgram::compile(program),
            switch_lut: SwitchLut::build(program),
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The active execution configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// The requested engine mode.
    pub fn mode(&self) -> InterpMode {
        self.mode
    }

    /// The compiled bytecode engine, when the lowering is runnable
    /// (`None` only for programs whose indices overflow the bytecode's
    /// `u32` fields — those stay on the tree walker).
    pub fn compiled(&self) -> Option<&CompiledProgram> {
        self.compiled.is_lowered().then_some(&self.compiled)
    }

    /// Execute `input`, streaming the block trace into `sink`.
    ///
    /// Deterministic: the same program, config and input always produce the
    /// identical event sequence and outcome.
    pub fn run<S: TraceSink + ?Sized>(&self, input: &[u8], sink: &mut S) -> ExecOutcome {
        self.run_bounded(input, sink, self.config.max_steps).outcome
    }

    /// Execute `input` on the untraced fast path: no coverage-sink
    /// callbacks, only the cheap [`NoveltyOracle`] observing the trace.
    /// After the call, [`NoveltyOracle::provably_seen`] reports whether
    /// this execution can be skipped or must be re-run with full tracing.
    ///
    /// Step accounting, hang classification and the outcome are identical
    /// to [`Interpreter::run`] by construction — the oracle rides the
    /// same [`TraceSink`] stream — so hang-budget calibration behaves the
    /// same in both speeds.
    pub fn run_fast(&self, input: &[u8], oracle: &mut NoveltyOracle) -> BoundedRun {
        self.run_fast_bounded(input, oracle, self.config.max_steps)
    }

    /// [`Interpreter::run_fast`] with an explicit step budget, mirroring
    /// [`Interpreter::run_bounded`].
    pub fn run_fast_bounded(
        &self,
        input: &[u8],
        oracle: &mut NoveltyOracle,
        max_steps: u64,
    ) -> BoundedRun {
        oracle.begin_exec();
        self.run_bounded(input, oracle, max_steps)
    }

    /// [`Interpreter::run`] with an explicit step budget overriding the
    /// configured `max_steps`, reporting the steps actually consumed —
    /// the entry point for AFL-style hang-budget calibration, where the
    /// fuzzer measures seed step counts and then tightens the budget.
    pub fn run_bounded<S: TraceSink + ?Sized>(
        &self,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
    ) -> BoundedRun {
        self.run_bounded_mode(input, sink, max_steps, self.mode)
    }

    /// [`Interpreter::run_bounded`] with an explicit engine mode
    /// overriding the interpreter's own — the dispatch point executors
    /// use to honour a per-campaign engine override without rebuilding
    /// the shared interpreter. Falls back to the tree walker when the
    /// compiled lowering is unusable, so every mode is always runnable.
    pub fn run_bounded_mode<S: TraceSink + ?Sized>(
        &self,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
        mode: InterpMode,
    ) -> BoundedRun {
        if mode.uses_compiled() && self.compiled.is_lowered() {
            return self
                .compiled
                .run_bounded(input, sink, max_steps, self.config.work_per_block);
        }
        let mut state = ExecState {
            program: self.program,
            input,
            switch_lut: &self.switch_lut,
            steps_left: max_steps,
            work_per_block: self.config.work_per_block,
            call_stack: Vec::new(),
        };
        let (outcome, planted_hang) = match state.exec_function(0, sink) {
            Flow::Done => (ExecOutcome::Ok, false),
            Flow::Crash { site, stack } => (ExecOutcome::Crash { site, stack }, false),
            Flow::Hang { planted } => (ExecOutcome::Hang, planted),
        };
        BoundedRun {
            outcome,
            steps: max_steps - state.steps_left,
            planted_hang,
        }
    }
}

/// Per-block `Switch` jump tables for the tree walker, precomputed once
/// at [`Interpreter`] construction: `base[block]` indexes a 256-entry
/// window in `targets` (first arm wins on duplicate values, non-switch
/// blocks keep the `usize::MAX` sentinel and never consult it).
#[derive(Debug)]
struct SwitchLut {
    base: Vec<usize>,
    targets: Vec<usize>,
}

impl SwitchLut {
    fn build(program: &Program) -> SwitchLut {
        let mut lut = SwitchLut {
            base: vec![usize::MAX; program.blocks.len()],
            targets: Vec::new(),
        };
        for (index, block) in program.blocks.iter().enumerate() {
            if let BlockKind::Switch { arms, default, .. } = &block.kind {
                let start = lut.targets.len();
                lut.base[index] = start;
                lut.targets.resize(start + 256, *default);
                let mut filled = [false; 256];
                for (value, target) in arms {
                    let slot = usize::from(*value);
                    if !filled[slot] {
                        filled[slot] = true;
                        lut.targets[start + slot] = *target;
                    }
                }
            }
        }
        lut
    }
}

/// Result of a [`Interpreter::run_bounded`] execution: the outcome plus
/// the interpreter steps consumed. A planted hang site drains the whole
/// budget, so `steps == max_steps` for those; ordinary completions report
/// the true block count executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedRun {
    /// The target's outcome.
    pub outcome: ExecOutcome,
    /// Interpreter steps (executed blocks) charged against the budget.
    pub steps: u64,
    /// When the outcome is [`ExecOutcome::Hang`]: `true` if a planted
    /// hang site fired, `false` if ordinary execution ran the step budget
    /// dry — the signal hang-budget calibration telemetry keys on.
    pub planted_hang: bool,
}

enum Flow {
    Done,
    Crash { site: usize, stack: Vec<usize> },
    Hang { planted: bool },
}

struct ExecState<'a> {
    program: &'a Program,
    input: &'a [u8],
    switch_lut: &'a SwitchLut,
    steps_left: u64,
    work_per_block: u32,
    call_stack: Vec<usize>,
}

impl ExecState<'_> {
    fn byte_at(&self, offset: usize) -> Option<u8> {
        self.input.get(offset).copied()
    }

    /// Charge one step (plus the configured per-block work). Returns false
    /// when the budget is exhausted.
    fn step(&mut self) -> bool {
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        if self.work_per_block > 0 {
            let mut acc = 0u64;
            for unit in 0..self.work_per_block {
                acc = acc
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(unit as u64);
            }
            std::hint::black_box(acc);
        }
        true
    }

    fn exec_function<S: TraceSink + ?Sized>(&mut self, function: usize, sink: &mut S) -> Flow {
        let mut pc = self.program.functions[function].entry;
        loop {
            if !self.step() {
                return Flow::Hang { planted: false };
            }
            sink.on_block(pc);
            match &self.program.blocks[pc].kind {
                BlockKind::Jump { next } => pc = *next,
                BlockKind::ByteGuard {
                    offset,
                    value,
                    taken,
                    fallthrough,
                } => {
                    pc = if self.byte_at(*offset) == Some(*value) {
                        *taken
                    } else {
                        *fallthrough
                    };
                }
                BlockKind::MaskGuard {
                    offset,
                    mask,
                    value,
                    taken,
                    fallthrough,
                } => {
                    pc = match self.byte_at(*offset) {
                        Some(byte) if byte & *mask == *value => *taken,
                        _ => *fallthrough,
                    };
                }
                BlockKind::MagicGuard {
                    offset,
                    values,
                    taken,
                    fallthrough,
                } => {
                    let matched = values
                        .iter()
                        .enumerate()
                        .all(|(i, v)| self.byte_at(offset + i) == Some(*v));
                    pc = if matched { *taken } else { *fallthrough };
                }
                BlockKind::Switch {
                    offset, default, ..
                } => {
                    // Arms were lowered into a per-block 256-entry table at
                    // construction; out-of-range reads take the default.
                    pc = match self.byte_at(*offset) {
                        Some(byte) => {
                            self.switch_lut.targets[self.switch_lut.base[pc] + usize::from(byte)]
                        }
                        None => *default,
                    };
                }
                BlockKind::LoopHead {
                    offset,
                    max_iters,
                    body,
                    exit,
                } => {
                    // Unrolled inline: trace is head, (body, head) per
                    // iteration, then the exit — so the back edge's hit
                    // count carries the trip count into the coverage map.
                    let iters = match (self.byte_at(*offset), *max_iters) {
                        (Some(byte), m) if m > 0 => (byte % m) as u32,
                        _ => 0,
                    };
                    for _ in 0..iters {
                        if !self.step() {
                            return Flow::Hang { planted: false };
                        }
                        sink.on_block(*body);
                        if !self.step() {
                            return Flow::Hang { planted: false };
                        }
                        sink.on_block(pc);
                    }
                    pc = *exit;
                }
                BlockKind::Call {
                    function: callee,
                    call_site,
                    next,
                } => {
                    sink.on_call(*call_site);
                    self.call_stack.push(*call_site);
                    match self.exec_function(*callee, sink) {
                        Flow::Done => {}
                        other => return other,
                    }
                    self.call_stack.pop();
                    sink.on_return();
                    pc = *next;
                }
                BlockKind::Crash { site } => {
                    // The crash unwinds straight out of the run, so the
                    // stack moves out of the drained state instead of
                    // cloning on every crash.
                    return Flow::Crash {
                        site: *site,
                        stack: std::mem::take(&mut self.call_stack),
                    };
                }
                BlockKind::Hang => {
                    // A planted hang models an unbounded loop: it drains
                    // the remaining step budget at once so campaigns count
                    // the hang without actually stalling.
                    self.steps_left = 0;
                    return Flow::Hang { planted: true };
                }
                BlockKind::Return => return Flow::Done,
            }
        }
    }
}
