//! Hand-construction of small single-function programs.

use crate::error::TargetError;
use crate::ir::{Block, BlockKind, FunctionInfo, Program};

/// One site queued in the builder, lowered to blocks by [`ProgramBuilder::build`].
#[derive(Debug, Clone)]
enum Site {
    Gate {
        offset: usize,
        value: u8,
        crash: bool,
    },
    MagicGate {
        offset: usize,
        values: Vec<u8>,
        crash: bool,
    },
    LoopGate {
        offset: usize,
        max_iters: u8,
    },
    SwitchGate {
        offset: usize,
        cases: Vec<u8>,
    },
    HangGate {
        offset: usize,
        value: u8,
    },
}

/// Builds small, deterministic single-function [`Program`]s — the unit-test
/// and example counterpart to [`crate::GeneratorConfig`].
///
/// Sites are lowered in insertion order. A plain gate becomes a test block
/// followed by a reward block (or a crash block when `crash` is set); the
/// final block of every built program is the function's return block.
///
/// ```
/// use bigmap_target::{Interpreter, NullSink, ProgramBuilder};
///
/// let program = ProgramBuilder::new("demo")
///     .gate(0, b'A', false)
///     .gate(1, b'B', true)
///     .build()
///     .unwrap();
/// assert_eq!(program.block_count(), 5);
/// assert!(Interpreter::new(&program).run(b"AB", &mut NullSink).is_crash());
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    sites: Vec<Site>,
}

impl ProgramBuilder {
    /// Start a builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            sites: Vec::new(),
        }
    }

    /// Append a single-byte guard reading `input[offset % len]`. When the
    /// byte equals `value` the guard's taken branch is a reward block, or a
    /// crash site when `crash` is true.
    pub fn gate(mut self, offset: usize, value: u8, crash: bool) -> Self {
        self.sites.push(Site::Gate {
            offset,
            value,
            crash,
        });
        self
    }

    /// Append a multi-byte all-at-once compare (a laf-intel roadblock).
    /// The taken branch is a reward block, or a crash site when `crash` is
    /// true. The magic bytes are exported by
    /// [`Program::extract_dictionary`].
    pub fn magic_gate(mut self, offset: usize, magic: &[u8], crash: bool) -> Self {
        self.sites.push(Site::MagicGate {
            offset,
            values: magic.to_vec(),
            crash,
        });
        self
    }

    /// Append a bounded loop iterating `input[offset] % max_iters` times.
    pub fn loop_gate(mut self, offset: usize, max_iters: u8) -> Self {
        self.sites.push(Site::LoopGate { offset, max_iters });
        self
    }

    /// Append a switch over `input[offset % len]` with one arm per case
    /// byte; non-matching bytes fall through to the next site.
    pub fn switch_gate(mut self, offset: usize, cases: &[u8]) -> Self {
        self.sites.push(Site::SwitchGate {
            offset,
            cases: cases.to_vec(),
        });
        self
    }

    /// Append a guarded hang site: when `input[offset % len] == value` the
    /// program enters an unbounded loop (reported as
    /// [`crate::ExecOutcome::Hang`]).
    pub fn hang_gate(mut self, offset: usize, value: u8) -> Self {
        self.sites.push(Site::HangGate { offset, value });
        self
    }

    /// Lower the queued sites into a validated [`Program`].
    pub fn build(self) -> Result<Program, TargetError> {
        if self.name.is_empty() {
            return Err(TargetError::EmptyName);
        }
        for (index, site) in self.sites.iter().enumerate() {
            match site {
                Site::MagicGate { values, .. } if values.is_empty() => {
                    return Err(TargetError::EmptyMagic { site: index });
                }
                Site::SwitchGate { cases, .. } if cases.is_empty() => {
                    return Err(TargetError::EmptySwitch { site: index });
                }
                _ => {}
            }
        }

        // First pass: compute each site's starting block index.
        let mut starts = Vec::with_capacity(self.sites.len());
        let mut cursor = 0usize;
        for site in &self.sites {
            starts.push(cursor);
            cursor += match site {
                Site::Gate { .. } | Site::MagicGate { .. } => 2,
                Site::LoopGate { .. } => 2,
                Site::SwitchGate { cases, .. } => 1 + cases.len(),
                Site::HangGate { .. } => 2,
            };
        }
        let ret = cursor; // the single return block comes last

        // Second pass: emit blocks.
        let mut blocks = Vec::with_capacity(ret + 1);
        let mut crash_sites = 0usize;
        let mut hang_sites = 0usize;
        for (index, site) in self.sites.iter().enumerate() {
            let start = starts[index];
            let next = starts.get(index + 1).copied().unwrap_or(ret);
            match site {
                Site::Gate {
                    offset,
                    value,
                    crash,
                } => {
                    blocks.push(Block {
                        kind: BlockKind::ByteGuard {
                            offset: *offset,
                            value: *value,
                            taken: start + 1,
                            fallthrough: next,
                        },
                        function: 0,
                    });
                    blocks.push(Block {
                        kind: if *crash {
                            let site = crash_sites;
                            crash_sites += 1;
                            BlockKind::Crash { site }
                        } else {
                            BlockKind::Jump { next }
                        },
                        function: 0,
                    });
                }
                Site::MagicGate {
                    offset,
                    values,
                    crash,
                } => {
                    blocks.push(Block {
                        kind: BlockKind::MagicGuard {
                            offset: *offset,
                            values: values.clone(),
                            taken: start + 1,
                            fallthrough: next,
                        },
                        function: 0,
                    });
                    blocks.push(Block {
                        kind: if *crash {
                            let site = crash_sites;
                            crash_sites += 1;
                            BlockKind::Crash { site }
                        } else {
                            BlockKind::Jump { next }
                        },
                        function: 0,
                    });
                }
                Site::LoopGate { offset, max_iters } => {
                    blocks.push(Block {
                        kind: BlockKind::LoopHead {
                            offset: *offset,
                            max_iters: *max_iters,
                            body: start + 1,
                            exit: next,
                        },
                        function: 0,
                    });
                    blocks.push(Block {
                        kind: BlockKind::Jump { next: start },
                        function: 0,
                    });
                }
                Site::SwitchGate { offset, cases } => {
                    blocks.push(Block {
                        kind: BlockKind::Switch {
                            offset: *offset,
                            arms: cases
                                .iter()
                                .enumerate()
                                .map(|(i, value)| (*value, start + 1 + i))
                                .collect(),
                            default: next,
                        },
                        function: 0,
                    });
                    for _ in cases {
                        blocks.push(Block {
                            kind: BlockKind::Jump { next },
                            function: 0,
                        });
                    }
                }
                Site::HangGate { offset, value } => {
                    hang_sites += 1;
                    blocks.push(Block {
                        kind: BlockKind::ByteGuard {
                            offset: *offset,
                            value: *value,
                            taken: start + 1,
                            fallthrough: next,
                        },
                        function: 0,
                    });
                    blocks.push(Block {
                        kind: BlockKind::Hang,
                        function: 0,
                    });
                }
            }
        }
        blocks.push(Block {
            kind: BlockKind::Return,
            function: 0,
        });

        let program = Program {
            name: self.name,
            call_sites: 0,
            crash_sites,
            hang_sites,
            blocks,
            functions: vec![FunctionInfo { entry: 0, ret }],
        };
        program.validate()?;
        Ok(program)
    }
}
