//! Seeded random program generation and seed-corpus synthesis.
//!
//! The generator plays the role of "compiling a real target with
//! instrumentation": given a seed and a handful of shape parameters it
//! emits a deterministic control-flow graph with byte-guarded branches,
//! multi-byte compare roadblocks, switches, bounded loops, guarded calls
//! between functions, and crash/hang sites buried behind guard ladders
//! (DESIGN.md §3a). The same config always generates the identical
//! program.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::TargetError;
use crate::ir::{Block, BlockKind, FunctionInfo, Program};

/// AFL's "interesting" 8-bit boundary values; half of all guard bytes are
/// drawn from here so that boundary-flavoured inputs open gates the way
/// they do in real targets.
const INTERESTING: [u8; 9] = [0x00, 0x01, 0x10, 0x20, 0x40, 0x64, 0x7F, 0x80, 0xFF];

/// Shape parameters for [`GeneratorConfig::generate`].
///
/// Construct with struct-update syntax over [`Default`]:
///
/// ```
/// use bigmap_target::GeneratorConfig;
///
/// let program = GeneratorConfig { seed: 11, ..Default::default() }.generate();
/// assert!(program.block_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Name given to the generated program.
    pub name: String,
    /// RNG seed: same seed (and same other fields) → identical program.
    pub seed: u64,
    /// Number of functions; function 0 is the entry point. Functions call
    /// strictly higher-numbered functions, so recursion is impossible and
    /// per-execution call trees stay subcritical.
    pub functions: usize,
    /// Comparison sites per function (gates, magics, switches, loops).
    pub gates_per_function: usize,
    /// Fraction of sites that are multi-byte compare roadblocks.
    pub magic_gate_ratio: f64,
    /// Fraction of sites that are switches.
    pub switch_ratio: f64,
    /// Fraction of sites that are bounded loops.
    pub loop_ratio: f64,
    /// Crash sites planted behind guard ladders.
    pub crash_sites: usize,
    /// Hang sites (guarded unbounded loops).
    pub hang_sites: usize,
    /// Rungs in each crash-guard ladder: a crash fires only after this many
    /// consecutive single-byte guards all match.
    pub crash_guard_width: usize,
    /// Longest multi-byte compare emitted (bytes); magics are 2..=this.
    pub max_magic_len: usize,
    /// Guard offsets are drawn from `0..offset_range`.
    pub offset_range: usize,
    /// Length of inputs produced by [`generate_seeds`]-style corpora for
    /// this program shape.
    pub seed_len: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "generated".into(),
            seed: 0,
            functions: 6,
            gates_per_function: 12,
            magic_gate_ratio: 0.10,
            switch_ratio: 0.10,
            loop_ratio: 0.12,
            crash_sites: 1,
            hang_sites: 0,
            crash_guard_width: 2,
            max_magic_len: 4,
            offset_range: 48,
            seed_len: 48,
        }
    }
}

/// One site queued for lowering.
enum GenSite {
    Plain {
        offset: usize,
        value: u8,
    },
    Magic {
        offset: usize,
        values: Vec<u8>,
    },
    Switch {
        offset: usize,
        cases: Vec<u8>,
    },
    Loop {
        offset: usize,
        max_iters: u8,
    },
    CrashLadder {
        rungs: Vec<(usize, u8)>,
        site: usize,
    },
    HangSite {
        offset: usize,
        value: u8,
    },
    Call {
        guard: Option<(usize, u8)>,
        callee: usize,
        call_site: usize,
    },
}

impl GenSite {
    fn block_len(&self) -> usize {
        match self {
            GenSite::Plain { .. } | GenSite::Magic { .. } => 2,
            GenSite::Switch { cases, .. } => 1 + cases.len(),
            GenSite::Loop { .. } => 2,
            GenSite::CrashLadder { rungs, .. } => rungs.len() + 1,
            GenSite::HangSite { .. } => 2,
            GenSite::Call { guard, .. } => 1 + usize::from(guard.is_some()),
        }
    }
}

impl GeneratorConfig {
    /// Check field ranges without generating.
    pub fn validate(&self) -> Result<(), TargetError> {
        if self.name.is_empty() {
            return Err(TargetError::EmptyName);
        }
        let ratio_ok = |r: f64| (0.0..=1.0).contains(&r) && r.is_finite();
        if !ratio_ok(self.magic_gate_ratio) {
            return Err(TargetError::InvalidConfig {
                field: "magic_gate_ratio",
                expected: "a fraction in 0.0..=1.0",
            });
        }
        if !ratio_ok(self.switch_ratio) {
            return Err(TargetError::InvalidConfig {
                field: "switch_ratio",
                expected: "a fraction in 0.0..=1.0",
            });
        }
        if !ratio_ok(self.loop_ratio) {
            return Err(TargetError::InvalidConfig {
                field: "loop_ratio",
                expected: "a fraction in 0.0..=1.0",
            });
        }
        if self.functions == 0 {
            return Err(TargetError::InvalidConfig {
                field: "functions",
                expected: "at least 1",
            });
        }
        if self.gates_per_function == 0 {
            return Err(TargetError::InvalidConfig {
                field: "gates_per_function",
                expected: "at least 1",
            });
        }
        if self.crash_guard_width == 0 {
            return Err(TargetError::InvalidConfig {
                field: "crash_guard_width",
                expected: "at least 1",
            });
        }
        if self.max_magic_len < 2 {
            return Err(TargetError::InvalidConfig {
                field: "max_magic_len",
                expected: "at least 2",
            });
        }
        if self.offset_range == 0 {
            return Err(TargetError::InvalidConfig {
                field: "offset_range",
                expected: "at least 1",
            });
        }
        Ok(())
    }

    /// Generate the program. Panics only on an invalid config (use
    /// [`GeneratorConfig::validate`] first to get a typed error).
    pub fn generate(&self) -> Program {
        if let Err(error) = self.validate() {
            panic!("invalid GeneratorConfig: {error}");
        }
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let guard_value = |rng: &mut SmallRng| -> u8 {
            if rng.gen_bool(0.5) {
                INTERESTING[rng.gen_range(0..INTERESTING.len())]
            } else {
                rng.gen()
            }
        };
        let offset = |rng: &mut SmallRng| rng.gen_range(0..self.offset_range);

        // Phase 1: per-function site lists.
        let mut sites: Vec<Vec<GenSite>> = (0..self.functions)
            .map(|_| {
                (0..self.gates_per_function)
                    .map(|_| {
                        let roll: f64 = rng.gen();
                        if roll < self.magic_gate_ratio {
                            let len = rng.gen_range(2..=self.max_magic_len);
                            GenSite::Magic {
                                offset: offset(&mut rng),
                                values: (0..len).map(|_| rng.gen()).collect(),
                            }
                        } else if roll < self.magic_gate_ratio + self.switch_ratio {
                            let arms = rng.gen_range(2..=4);
                            let mut cases: Vec<u8> = Vec::with_capacity(arms);
                            while cases.len() < arms {
                                let case = guard_value(&mut rng);
                                if !cases.contains(&case) {
                                    cases.push(case);
                                }
                            }
                            GenSite::Switch {
                                offset: offset(&mut rng),
                                cases,
                            }
                        } else if roll < self.magic_gate_ratio + self.switch_ratio + self.loop_ratio
                        {
                            GenSite::Loop {
                                offset: offset(&mut rng),
                                max_iters: rng.gen_range(4..=16),
                            }
                        } else {
                            GenSite::Plain {
                                offset: offset(&mut rng),
                                value: guard_value(&mut rng),
                            }
                        }
                    })
                    .collect()
            })
            .collect();

        // Phase 2: call edges. Function f is called from f-1 so every
        // function is statically reachable; the entry's call to function 1
        // is unguarded (every execution descends at least one level), all
        // deeper and extra cross-calls are byte-guarded.
        let mut call_site = 0usize;
        for callee in 1..self.functions {
            let caller = callee - 1;
            let guard = if callee == 1 {
                None
            } else {
                Some((offset(&mut rng), guard_value(&mut rng)))
            };
            let at = rng.gen_range(0..=sites[caller].len());
            sites[caller].insert(
                at,
                GenSite::Call {
                    guard,
                    callee,
                    call_site,
                },
            );
            call_site += 1;
            // Occasionally a second, guarded call from an earlier function.
            if callee >= 2 && rng.gen_bool(0.25) {
                let caller = rng.gen_range(0..callee);
                let at = rng.gen_range(0..=sites[caller].len());
                sites[caller].insert(
                    at,
                    GenSite::Call {
                        guard: Some((offset(&mut rng), guard_value(&mut rng))),
                        callee,
                        call_site,
                    },
                );
                call_site += 1;
            }
        }

        // Phase 3: crash ladders and hang sites, scattered over functions.
        for site in 0..self.crash_sites {
            let rungs = (0..self.crash_guard_width)
                .map(|_| (offset(&mut rng), guard_value(&mut rng)))
                .collect();
            let function = rng.gen_range(0..self.functions);
            let at = rng.gen_range(0..=sites[function].len());
            sites[function].insert(at, GenSite::CrashLadder { rungs, site });
        }
        for _ in 0..self.hang_sites {
            let function = rng.gen_range(0..self.functions);
            let at = rng.gen_range(0..=sites[function].len());
            sites[function].insert(
                at,
                GenSite::HangSite {
                    offset: offset(&mut rng),
                    value: guard_value(&mut rng),
                },
            );
        }

        // Phase 4: lowering. Assign global block indices function by
        // function, then emit.
        let mut functions = Vec::with_capacity(self.functions);
        let mut starts: Vec<Vec<usize>> = Vec::with_capacity(self.functions);
        let mut cursor = 0usize;
        for function_sites in &sites {
            let entry = cursor;
            let mut site_starts = Vec::with_capacity(function_sites.len());
            for site in function_sites {
                site_starts.push(cursor);
                cursor += site.block_len();
            }
            functions.push(FunctionInfo { entry, ret: cursor });
            starts.push(site_starts);
            cursor += 1; // the return block
        }

        let mut blocks = Vec::with_capacity(cursor);
        for (f, function_sites) in sites.iter().enumerate() {
            for (index, site) in function_sites.iter().enumerate() {
                let start = starts[f][index];
                let next = starts[f]
                    .get(index + 1)
                    .copied()
                    .unwrap_or(functions[f].ret);
                lower_site(site, f, start, next, &mut blocks);
            }
            blocks.push(Block {
                kind: BlockKind::Return,
                function: f,
            });
        }

        let program = Program {
            name: self.name.clone(),
            call_sites: call_site,
            crash_sites: self.crash_sites,
            hang_sites: self.hang_sites,
            blocks,
            functions,
        };
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }
}

/// Emit the blocks for one site. `start` is the site's first global block
/// index, `next` the first block of the following site (or the function's
/// return block).
fn lower_site(site: &GenSite, function: usize, start: usize, next: usize, blocks: &mut Vec<Block>) {
    match site {
        GenSite::Plain { offset, value } => {
            blocks.push(Block {
                kind: BlockKind::ByteGuard {
                    offset: *offset,
                    value: *value,
                    taken: start + 1,
                    fallthrough: next,
                },
                function,
            });
            blocks.push(Block {
                kind: BlockKind::Jump { next },
                function,
            });
        }
        GenSite::Magic { offset, values } => {
            blocks.push(Block {
                kind: BlockKind::MagicGuard {
                    offset: *offset,
                    values: values.clone(),
                    taken: start + 1,
                    fallthrough: next,
                },
                function,
            });
            blocks.push(Block {
                kind: BlockKind::Jump { next },
                function,
            });
        }
        GenSite::Switch { offset, cases } => {
            blocks.push(Block {
                kind: BlockKind::Switch {
                    offset: *offset,
                    arms: cases
                        .iter()
                        .enumerate()
                        .map(|(i, value)| (*value, start + 1 + i))
                        .collect(),
                    default: next,
                },
                function,
            });
            for _ in cases {
                blocks.push(Block {
                    kind: BlockKind::Jump { next },
                    function,
                });
            }
        }
        GenSite::Loop { offset, max_iters } => {
            blocks.push(Block {
                kind: BlockKind::LoopHead {
                    offset: *offset,
                    max_iters: *max_iters,
                    body: start + 1,
                    exit: next,
                },
                function,
            });
            blocks.push(Block {
                kind: BlockKind::Jump { next: start },
                function,
            });
        }
        GenSite::CrashLadder { rungs, site } => {
            for (i, (offset, value)) in rungs.iter().enumerate() {
                blocks.push(Block {
                    kind: BlockKind::ByteGuard {
                        offset: *offset,
                        value: *value,
                        taken: start + i + 1,
                        fallthrough: next,
                    },
                    function,
                });
            }
            blocks.push(Block {
                kind: BlockKind::Crash { site: *site },
                function,
            });
        }
        GenSite::HangSite { offset, value } => {
            blocks.push(Block {
                kind: BlockKind::ByteGuard {
                    offset: *offset,
                    value: *value,
                    taken: start + 1,
                    fallthrough: next,
                },
                function,
            });
            blocks.push(Block {
                kind: BlockKind::Hang,
                function,
            });
        }
        GenSite::Call {
            guard,
            callee,
            call_site,
        } => match guard {
            Some((offset, value)) => {
                blocks.push(Block {
                    kind: BlockKind::ByteGuard {
                        offset: *offset,
                        value: *value,
                        taken: start + 1,
                        fallthrough: next,
                    },
                    function,
                });
                blocks.push(Block {
                    kind: BlockKind::Call {
                        function: *callee,
                        call_site: *call_site,
                        next,
                    },
                    function,
                });
            }
            None => {
                blocks.push(Block {
                    kind: BlockKind::Call {
                        function: *callee,
                        call_site: *call_site,
                        next,
                    },
                    function,
                });
            }
        },
    }
}

/// Synthesise a deterministic seed corpus of `n` inputs for `program`.
///
/// Each seed starts from random bytes and then "solves" a random subset of
/// the program's safe single-byte guards (guards that do not lead into a
/// crash ladder or hang site), mimicking the head-start a real seed corpus
/// gives a campaign. Same `(program, n, seed)` → identical corpus.
pub fn generate_seeds(program: &Program, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));

    // Input length: cover every guard offset, within sane bounds.
    let mut max_offset = 0usize;
    let mut gates: Vec<(usize, u8)> = Vec::new();
    for block in &program.blocks {
        if let BlockKind::ByteGuard {
            offset,
            value,
            taken,
            ..
        } = &block.kind
        {
            max_offset = max_offset.max(*offset);
            if !leads_to_fault(program, *taken, 64) {
                gates.push((*offset, *value));
            }
        }
        if let BlockKind::MaskGuard { offset, .. }
        | BlockKind::Switch { offset, .. }
        | BlockKind::LoopHead { offset, .. } = &block.kind
        {
            max_offset = max_offset.max(*offset);
        }
    }
    let len = (max_offset + 1).clamp(16, 128);

    (0..n)
        .map(|i| {
            let mut input: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            // Earlier seeds solve fewer gates, later seeds more, so the
            // corpus spreads over shallow and deep behaviour.
            let solve_p = 0.15 + 0.55 * (i as f64 + 1.0) / (n as f64 + 1.0);
            for &(offset, value) in &gates {
                if rng.gen_bool(solve_p) {
                    input[offset % len] = value;
                }
            }
            input
        })
        .collect()
}

/// Does `block` reach a crash or hang site through guard-taken/jump edges
/// within `depth` hops? Used to keep synthesised seeds from trivially
/// crashing the target.
fn leads_to_fault(program: &Program, block: usize, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    match &program.blocks[block].kind {
        BlockKind::Crash { .. } | BlockKind::Hang => true,
        BlockKind::ByteGuard { taken, .. } | BlockKind::MaskGuard { taken, .. } => {
            leads_to_fault(program, *taken, depth - 1)
        }
        _ => false,
    }
}
