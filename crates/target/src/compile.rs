//! Compiled threaded-bytecode engine with snapshot/dirty-state resets.
//!
//! The tree-walking interpreter ([`crate::Interpreter`]) matches on
//! [`BlockKind`] enum nodes scattered across the heap: every step chases
//! a `Vec<Block>` pointer, loads a discriminant, and (for `Switch` and
//! `MagicGuard`) walks further heap allocations. This module lowers a
//! [`Program`] once into a flattened, cache-dense bytecode:
//!
//! * **flattened ops** — one dense `Op` record (tag + four `u32`
//!   operands) per block, indexed by the global block index, so the
//!   dispatch loop costs a single bounds-checked load per step instead of
//!   pointer-chasing enum nodes;
//! * **dense jump targets** — every successor is a `u32` program counter
//!   equal to the global block index (trace events need no translation);
//! * **`Switch` jump tables** — arms are lowered to 256-entry tables in
//!   one shared arena, replacing the per-step linear arm scan with a
//!   single indexed load;
//! * **`MagicGuard` side arena** — magic byte sequences live in one
//!   contiguous byte arena, compared with a single slice comparison on
//!   the non-recording path;
//! * **bulk-charged loops** — when the step budget provably survives a
//!   whole unrolled `LoopHead` (the common case), its `2 × iters` steps
//!   are charged with one subtraction and the per-iteration exhaustion
//!   checks vanish; with a no-op sink the iteration body compiles away
//!   entirely.
//!
//! The execution loop is monomorphized over the [`TraceSink`] (and over
//! an internal recording hook that compiles to nothing for plain runs),
//! so the untraced fast path and the fully traced path each get their
//! own specialized dispatch loop — one engine backing both `run` and
//! `run_fast`.
//!
//! # Snapshot/dirty-state resets
//!
//! Fuzzing campaigns execute long streams of children mutated from one
//! scheduled parent. [`CompiledProgram::record`] memoizes a parent run:
//! the full trace-event tape plus the *input read-set* as
//! `(step, offset-span)` watchpoints — one watchpoint per input-reading
//! op, recording exactly which bytes that op's control-flow decision
//! depended on. [`CompiledProgram::run_resumed`] then executes a mutated
//! child by diffing its bytes against the parent input and finding the
//! first watchpoint whose op *decides differently* on the child's bytes
//! — a differing byte whose guard still fails (or whose switch still
//! lands on the same target, or whose loop still runs the same iteration
//! count) is provably a non-event, since the engine carries no
//! input-dependent state besides pc, call frames and the step counter.
//! The memoized trace prefix before the diverging step is replayed into
//! the sink (restoring pc, step counter, call stack and — through the
//! sink — any rolling path hash), and the engine resumes live execution
//! from the watchpoint. If no watchpoint's decision diverges the entire
//! recorded run replays.
//!
//! The tape is engineered so serving a child from it is drastically
//! cheaper than re-executing it:
//!
//! * events are single tagged `u32` words (two tag bits + a 30-bit
//!   payload), so replay is a branch-predictable scan of one dense array
//!   — and a no-op sink erases the scan altogether;
//! * call/return positions are mirrored into side arrays, so the resume
//!   point's call-frame stack is rebuilt from the (rare) call events
//!   only, never by walking the whole tape;
//! * the read-set is inverted into per-byte watchpoint lists (CSR), so
//!   finding the resume point walks only the lists of genuinely
//!   *differing* bytes instead of scanning every recorded read.
//!
//! **Conservativeness invariant**: execution is a pure function of the
//! read bytes; a prefix is reused only when *every* watchpoint in it
//! provably decides identically on parent and child bytes (an exact
//! re-evaluation of the op's decision, not just span overlap). Budget
//! mismatches, recording overflow and step-0 divergence all fall back to
//! full re-execution ([`SnapshotOutcome::Miss`]). False skips are
//! therefore impossible:
//! resumed and replayed runs produce bit-identical outcomes, trace-event
//! sequences and step counts versus a cold run — campaigns keep exact
//! trajectories regardless of hit rate.

use crate::interp::{BoundedRun, ExecOutcome, TraceSink};
use crate::ir::{BlockKind, Program};

/// Recording stops growing past this many trace events; the recording is
/// then flagged overflowed and every resume attempt misses. Bounds
/// snapshot memory at 4 MiB of event words for pathological step-budget
/// programs.
const EVENT_CAP: usize = 1 << 20;

/// Event words use the top two bits as a tag; payloads (block pcs and
/// call sites) must fit in the remaining 30 bits, enforced by [`Narrow`].
const EV_PAYLOAD: u32 = (1 << 30) - 1;
/// Tag of a call event word (payload = call site).
const EV_CALL: u32 = 1 << 30;
/// Tag of a return event word (no payload).
const EV_RET: u32 = 2 << 30;

/// Read-set inversion covers byte offsets below this; a program reading
/// beyond it (absurd for the generated targets) falls back to the linear
/// watchpoint scan.
const READ_INDEX_CAP: usize = 4096;

/// One lowered op's tag; the payload lives in the same [`Op`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpTag {
    /// Unconditional jump to `a`.
    Jump,
    /// `input[a] == d as u8` ? goto `b` : goto `c`.
    ByteGuard,
    /// `input[a] & (d >> 8) == d & 0xff` ? goto `b` : goto `c`.
    MaskGuard,
    /// Magic span `magic_spans[d]` matches at offset `a` ? `b` : `c`.
    MagicGuard,
    /// Indexed jump through table `b` on `input[a]`; out-of-range → `c`.
    Switch,
    /// Loop head at offset `a`: body `b`, exit `c`, max iters `d`.
    LoopHead,
    /// Call: callee entry `a`, call site `b`, return pc `c`.
    Call,
    /// Planted crash site `a`.
    Crash,
    /// Planted hang: drains the step budget.
    Hang,
    /// Return to the calling frame (or finish at depth 0).
    Return,
}

/// One lowered op: tag plus four dense operands whose meaning depends on
/// the tag. One 20-byte record per block keeps dispatch at a single
/// bounds-checked load.
#[derive(Debug, Clone, Copy)]
struct Op {
    tag: OpTag,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
}

/// One live call frame of the compiled engine.
#[derive(Debug, Clone, Copy)]
struct Frame {
    ret_pc: u32,
    site: u32,
}

/// One input-read watchpoint: at `steps_before` consumed steps, the op at
/// `pc` (whose own Block event sits at `ev_cursor` on the tape) read the
/// byte span `[offset, offset + len)`.
#[derive(Debug, Clone, Copy)]
struct ReadPoint {
    steps_before: u64,
    ev_cursor: usize,
    pc: u32,
    offset: u32,
    len: u32,
}

/// How a raw engine run ended (crash stacks are assembled by the caller
/// from the live frames).
enum RawEnd {
    Done,
    Crash(u32),
    Hang { planted: bool },
}

/// Mutable engine registers threaded through the dispatch loop.
struct EngineState {
    budget: u64,
    steps_left: u64,
    work_per_block: u32,
    frames: Vec<Frame>,
}

/// Internal recording hook; [`NoTape`] compiles to nothing, so plain runs
/// pay zero recording overhead. `ACTIVE` lets ops skip work that exists
/// only to feed the recorder (e.g. `MagicGuard`'s exact-dependency
/// bookkeeping) at monomorphization time.
trait Record {
    const ACTIVE: bool;
    fn block(&mut self, pc: u32);
    fn call(&mut self, site: u32, ret_pc: u32);
    fn ret(&mut self);
    fn read(&mut self, st: &EngineState, pc: u32, offset: u32, len: u32);
}

/// The no-op recorder for plain (non-memoizing) runs.
struct NoTape;

impl Record for NoTape {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn block(&mut self, _pc: u32) {}
    #[inline(always)]
    fn call(&mut self, _site: u32, _ret_pc: u32) {}
    #[inline(always)]
    fn ret(&mut self) {}
    #[inline(always)]
    fn read(&mut self, _st: &EngineState, _pc: u32, _offset: u32, _len: u32) {}
}

/// The live recorder behind [`CompiledProgram::record`].
struct Tape {
    events: Vec<u32>,
    call_frames: Vec<Frame>,
    call_pos: Vec<u32>,
    ret_pos: Vec<u32>,
    reads: Vec<ReadPoint>,
    overflowed: bool,
}

impl Tape {
    /// Appends one event word; returns `false` (and poisons the tape)
    /// once the cap is hit — an overflowed recording never resumes, so
    /// the side arrays may simply stop growing with it.
    #[inline]
    fn push(&mut self, word: u32) -> bool {
        if self.events.len() >= EVENT_CAP {
            self.overflowed = true;
            false
        } else {
            self.events.push(word);
            true
        }
    }
}

impl Record for Tape {
    const ACTIVE: bool = true;
    #[inline]
    fn block(&mut self, pc: u32) {
        self.push(pc);
    }
    #[inline]
    fn call(&mut self, site: u32, ret_pc: u32) {
        if self.push(EV_CALL | site) {
            self.call_pos.push((self.events.len() - 1) as u32);
            self.call_frames.push(Frame { ret_pc, site });
        }
    }
    #[inline]
    fn ret(&mut self) {
        if self.push(EV_RET) {
            self.ret_pos.push((self.events.len() - 1) as u32);
        }
    }
    #[inline]
    fn read(&mut self, st: &EngineState, pc: u32, offset: u32, len: u32) {
        if self.overflowed {
            return;
        }
        self.reads.push(ReadPoint {
            // The op's own step is already charged: consumed-before-op is
            // budget minus (what's left plus this op's step).
            steps_before: st.budget - st.steps_left - 1,
            // The op's own Block event was just pushed; the replay prefix
            // for a resume at this op excludes it.
            ev_cursor: self.events.len() - 1,
            pc,
            offset,
            len,
        });
    }
}

/// A memoized execution of one input ([`CompiledProgram::record`]): the
/// full trace-event tape, the input read-set watchpoints (plus their
/// per-byte inversion), and the final [`BoundedRun`] — everything
/// [`CompiledProgram::run_resumed`] needs to execute a mutated child from
/// the last provably unaffected step.
#[derive(Debug, Clone)]
pub struct ExecRecording {
    input: Vec<u8>,
    budget: u64,
    events: Vec<u32>,
    call_frames: Vec<Frame>,
    call_pos: Vec<u32>,
    ret_pos: Vec<u32>,
    reads: Vec<ReadPoint>,
    /// CSR inversion of the read-set: the watchpoints covering byte `o`,
    /// in step order, are `read_csr_data[read_csr_idx[o]..read_csr_idx[o
    /// + 1]]` (indices into `reads`).
    read_csr_idx: Vec<u32>,
    read_csr_data: Vec<u32>,
    /// False when some read lies beyond [`READ_INDEX_CAP`]; resume-point
    /// search then falls back to the linear watchpoint scan.
    read_index_ok: bool,
    outcome: ExecOutcome,
    steps: u64,
    planted_hang: bool,
    overflowed: bool,
}

impl ExecRecording {
    /// The step budget the recording ran under; resumes require an exact
    /// match (a different budget changes hang classification).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Steps the recorded run consumed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the trace tape overflowed the event cap (every resume
    /// attempt against an overflowed recording misses).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The input the recording executed.
    pub fn input(&self) -> &[u8] {
        &self.input
    }
}

/// How [`CompiledProgram::run_resumed`] satisfied an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotOutcome {
    /// The snapshot could not be reused (budget mismatch, overflowed
    /// recording, or divergence before the first step); the child was
    /// re-executed from scratch.
    Miss,
    /// No recorded read was affected by the mutation: the entire memoized
    /// trace replayed into the sink with zero live execution.
    FullReplay {
        /// Steps served from the recording (the whole recorded run).
        skipped_steps: u64,
    },
    /// Execution resumed live at the first possibly-affected read after
    /// replaying the memoized prefix.
    Resumed {
        /// Steps served from the memoized prefix instead of re-execution.
        skipped_steps: u64,
    },
}

impl SnapshotOutcome {
    /// True when any part of the recording was reused.
    pub fn is_hit(self) -> bool {
        !matches!(self, SnapshotOutcome::Miss)
    }

    /// Steps served from the recording (0 for a miss).
    pub fn skipped_steps(self) -> u64 {
        match self {
            SnapshotOutcome::Miss => 0,
            SnapshotOutcome::FullReplay { skipped_steps }
            | SnapshotOutcome::Resumed { skipped_steps } => skipped_steps,
        }
    }
}

/// The byte range over which two inputs can differ, as a half-open
/// interval in the index space of the longer input. `None` means the
/// inputs are identical.
struct DiffRange {
    lo: usize,
    hi: usize,
}

/// Length of the common prefix of `a` and `b`, compared a word at a time
/// (the per-byte scan would cost as much as a whole raw exec on the
/// cheap suite targets).
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        if wa != wb {
            return i + ((wa ^ wb).trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Length of the common suffix of `a[lo..]` and `b[lo..]`, word-wise.
fn common_suffix(a: &[u8], b: &[u8], lo: usize) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut i = a.len();
    while i >= lo + 8 {
        let wa = u64::from_le_bytes(a[i - 8..i].try_into().unwrap());
        let wb = u64::from_le_bytes(b[i - 8..i].try_into().unwrap());
        if wa != wb {
            return a.len() - i + ((wa ^ wb).leading_zeros() / 8) as usize;
        }
        i -= 8;
    }
    while i > lo && a[i - 1] == b[i - 1] {
        i -= 1;
    }
    a.len() - i
}

impl DiffRange {
    fn between(parent: &[u8], child: &[u8]) -> Option<DiffRange> {
        let min_len = parent.len().min(child.len());
        let lo = common_prefix(parent, child);
        if lo == min_len && parent.len() == child.len() {
            return None;
        }
        let hi = if parent.len() == child.len() {
            parent.len() - common_suffix(parent, child, lo)
        } else {
            parent.len().max(child.len())
        };
        Some(DiffRange { lo, hi })
    }

    /// Exact test: does any byte in `[offset, offset + len)` differ
    /// between parent and child? The `[lo, hi)` bracket is a fast
    /// rejection; inside it the bytes are compared individually
    /// (out-of-range reads compare as `None`, so truncation counts as a
    /// difference exactly like the interpreter's `byte_at` would see it).
    fn affects(&self, parent: &[u8], child: &[u8], offset: usize, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let end = offset.saturating_add(len);
        if end <= self.lo || offset >= self.hi {
            return false;
        }
        let start = offset.max(self.lo);
        let stop = end.min(self.hi);
        (start..stop).any(|i| parent.get(i) != child.get(i))
    }
}

/// A [`Program`] lowered to flattened threaded bytecode.
///
/// Ops are indexed by the global block index, so the program counter *is*
/// the trace-event block id — no translation on the hot path. Build one
/// with [`CompiledProgram::compile`]; it holds no borrow of the source
/// program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    ops: Vec<Op>,
    magic_arena: Vec<u8>,
    magic_spans: Vec<(u32, u32)>,
    switch_tables: Vec<u32>,
    entry: u32,
    lowered: bool,
}

/// Running accumulator for [`CompiledProgram::compile`]'s `usize → u32`
/// narrowing: any value that does not fit in the 30 payload bits of an
/// event word marks the whole lowering unusable (the interpreter then
/// stays on the tree walker).
struct Narrow {
    ok: bool,
}

impl Narrow {
    fn fit(&mut self, value: usize) -> u32 {
        match u32::try_from(value) {
            Ok(v) if v <= EV_PAYLOAD => v,
            _ => {
                self.ok = false;
                0
            }
        }
    }
}

impl CompiledProgram {
    /// Lowers `program` into flattened bytecode. Always succeeds
    /// structurally; if any index or offset exceeds the bytecode's 30-bit
    /// payload space (possible only for absurd synthetic programs), the
    /// result reports [`CompiledProgram::is_lowered`] `== false` and must
    /// not be run.
    pub fn compile(program: &Program) -> CompiledProgram {
        let mut narrow = Narrow { ok: true };
        let mut ops = Vec::with_capacity(program.blocks.len());
        let mut magic_arena = Vec::new();
        let mut magic_spans = Vec::new();
        let mut switch_tables: Vec<u32> = Vec::new();

        for block in &program.blocks {
            let op = match &block.kind {
                BlockKind::Jump { next } => Op {
                    tag: OpTag::Jump,
                    a: narrow.fit(*next),
                    b: 0,
                    c: 0,
                    d: 0,
                },
                BlockKind::ByteGuard {
                    offset,
                    value,
                    taken,
                    fallthrough,
                } => Op {
                    tag: OpTag::ByteGuard,
                    a: narrow.fit(*offset),
                    b: narrow.fit(*taken),
                    c: narrow.fit(*fallthrough),
                    d: u32::from(*value),
                },
                BlockKind::MaskGuard {
                    offset,
                    mask,
                    value,
                    taken,
                    fallthrough,
                } => Op {
                    tag: OpTag::MaskGuard,
                    a: narrow.fit(*offset),
                    b: narrow.fit(*taken),
                    c: narrow.fit(*fallthrough),
                    d: (u32::from(*mask) << 8) | u32::from(*value),
                },
                BlockKind::MagicGuard {
                    offset,
                    values,
                    taken,
                    fallthrough,
                } => {
                    let start = narrow.fit(magic_arena.len());
                    magic_arena.extend_from_slice(values);
                    let span = narrow.fit(magic_spans.len());
                    magic_spans.push((start, narrow.fit(values.len())));
                    Op {
                        tag: OpTag::MagicGuard,
                        a: narrow.fit(*offset),
                        b: narrow.fit(*taken),
                        c: narrow.fit(*fallthrough),
                        d: span,
                    }
                }
                BlockKind::Switch {
                    offset,
                    arms,
                    default,
                } => {
                    let table = narrow.fit(switch_tables.len() / 256);
                    let base = switch_tables.len();
                    switch_tables.resize(base + 256, narrow.fit(*default));
                    let mut filled = [false; 256];
                    for (value, target) in arms {
                        // First arm wins on duplicate values, matching the
                        // tree walker's linear scan.
                        let slot = usize::from(*value);
                        if !filled[slot] {
                            filled[slot] = true;
                            switch_tables[base + slot] = narrow.fit(*target);
                        }
                    }
                    Op {
                        tag: OpTag::Switch,
                        a: narrow.fit(*offset),
                        b: table,
                        c: narrow.fit(*default),
                        d: 0,
                    }
                }
                BlockKind::LoopHead {
                    offset,
                    max_iters,
                    body,
                    exit,
                } => Op {
                    tag: OpTag::LoopHead,
                    a: narrow.fit(*offset),
                    b: narrow.fit(*body),
                    c: narrow.fit(*exit),
                    d: u32::from(*max_iters),
                },
                BlockKind::Call {
                    function,
                    call_site,
                    next,
                } => Op {
                    tag: OpTag::Call,
                    a: narrow.fit(program.functions[*function].entry),
                    b: narrow.fit(*call_site),
                    c: narrow.fit(*next),
                    d: 0,
                },
                BlockKind::Crash { site } => Op {
                    tag: OpTag::Crash,
                    a: narrow.fit(*site),
                    b: 0,
                    c: 0,
                    d: 0,
                },
                BlockKind::Hang => Op {
                    tag: OpTag::Hang,
                    a: 0,
                    b: 0,
                    c: 0,
                    d: 0,
                },
                BlockKind::Return => Op {
                    tag: OpTag::Return,
                    a: 0,
                    b: 0,
                    c: 0,
                    d: 0,
                },
            };
            ops.push(op);
        }

        let entry = narrow.fit(program.functions[0].entry);
        CompiledProgram {
            ops,
            magic_arena,
            magic_spans,
            switch_tables,
            entry,
            lowered: narrow.ok,
        }
    }

    /// Whether the lowering is complete and runnable. `false` only when
    /// some index or offset exceeded the bytecode's payload space during
    /// [`CompiledProgram::compile`].
    pub fn is_lowered(&self) -> bool {
        self.lowered
    }

    /// Executes `input` front to back, streaming the trace into `sink` —
    /// the compiled equivalent of [`crate::Interpreter::run_bounded`]:
    /// same outcomes, same event sequence, same step accounting.
    ///
    /// # Panics
    ///
    /// Panics if [`CompiledProgram::is_lowered`] is `false`.
    pub fn run_bounded<S: TraceSink + ?Sized>(
        &self,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
        work_per_block: u32,
    ) -> BoundedRun {
        let mut st = EngineState {
            budget: max_steps,
            steps_left: max_steps,
            work_per_block,
            frames: Vec::new(),
        };
        let end = self.exec_loop(input, &mut st, self.entry, sink, &mut NoTape);
        finish(end, &st)
    }

    /// [`CompiledProgram::run_bounded`], additionally memoizing the run
    /// into an [`ExecRecording`] for later [`CompiledProgram::run_resumed`]
    /// calls against mutated variants of `input`.
    ///
    /// # Panics
    ///
    /// Panics if [`CompiledProgram::is_lowered`] is `false`.
    pub fn record<S: TraceSink + ?Sized>(
        &self,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
        work_per_block: u32,
    ) -> (BoundedRun, ExecRecording) {
        let mut st = EngineState {
            budget: max_steps,
            steps_left: max_steps,
            work_per_block,
            frames: Vec::new(),
        };
        let mut tape = Tape {
            events: Vec::new(),
            call_frames: Vec::new(),
            call_pos: Vec::new(),
            ret_pos: Vec::new(),
            reads: Vec::new(),
            overflowed: false,
        };
        let end = self.exec_loop(input, &mut st, self.entry, sink, &mut tape);
        let run = finish(end, &st);

        // Invert the read-set into per-byte watchpoint lists (CSR), so
        // the resume-point search walks only the lists of the child's
        // differing bytes instead of the whole read-set.
        let mut read_index_ok = true;
        let mut max_end = 0usize;
        for read in &tape.reads {
            let end = read.offset as usize + read.len as usize;
            if end > READ_INDEX_CAP {
                read_index_ok = false;
                break;
            }
            max_end = max_end.max(end);
        }
        let mut read_csr_idx: Vec<u32> = Vec::new();
        let mut read_csr_data: Vec<u32> = Vec::new();
        if read_index_ok {
            read_csr_idx = vec![0u32; max_end + 1];
            for read in &tape.reads {
                for o in read.offset as usize..read.offset as usize + read.len as usize {
                    read_csr_idx[o + 1] += 1;
                }
            }
            for o in 0..max_end {
                read_csr_idx[o + 1] += read_csr_idx[o];
            }
            read_csr_data = vec![0u32; read_csr_idx[max_end] as usize];
            let mut cursor = read_csr_idx.clone();
            for (i, read) in tape.reads.iter().enumerate() {
                for o in read.offset as usize..read.offset as usize + read.len as usize {
                    read_csr_data[cursor[o] as usize] = i as u32;
                    cursor[o] += 1;
                }
            }
        }

        let recording = ExecRecording {
            input: input.to_vec(),
            budget: max_steps,
            events: tape.events,
            call_frames: tape.call_frames,
            call_pos: tape.call_pos,
            ret_pos: tape.ret_pos,
            reads: tape.reads,
            read_csr_idx,
            read_csr_data,
            read_index_ok,
            outcome: run.outcome.clone(),
            steps: run.steps,
            planted_hang: run.planted_hang,
            overflowed: tape.overflowed,
        };
        (run, recording)
    }

    /// Executes `input` using `recording` (a memoized run of a related
    /// input, typically the mutation parent) as a snapshot: the memoized
    /// trace prefix up to the first input read whose *decision* genuinely
    /// diverges (see [`CompiledProgram::read_decision`]) is replayed into
    /// `sink`, and live execution resumes from there. Falls back to
    /// [`CompiledProgram::run_bounded`] when the snapshot cannot be
    /// reused ([`SnapshotOutcome::Miss`]).
    ///
    /// The returned [`BoundedRun`] is bit-identical to what a cold
    /// [`CompiledProgram::run_bounded`] of `input` would produce, and
    /// `sink` observes the identical event sequence — the conservativeness
    /// invariant this module's docs spell out.
    ///
    /// # Panics
    ///
    /// Panics if [`CompiledProgram::is_lowered`] is `false`.
    pub fn run_resumed<S: TraceSink + ?Sized>(
        &self,
        recording: &ExecRecording,
        input: &[u8],
        sink: &mut S,
        max_steps: u64,
        work_per_block: u32,
    ) -> (BoundedRun, SnapshotOutcome) {
        if recording.overflowed || recording.budget != max_steps {
            let run = self.run_bounded(input, sink, max_steps, work_per_block);
            return (run, SnapshotOutcome::Miss);
        }
        let first_diverging = DiffRange::between(&recording.input, input)
            .and_then(|diff| first_diverging_read(self, recording, input, &diff));
        match first_diverging {
            None => {
                // Identical input, a mutation only in bytes the run never
                // read, or one that left every read's decision unchanged:
                // serve the whole run from the tape.
                replay_events(&recording.events, sink);
                let run = BoundedRun {
                    outcome: recording.outcome.clone(),
                    steps: recording.steps,
                    planted_hang: recording.planted_hang,
                };
                let outcome = SnapshotOutcome::FullReplay {
                    skipped_steps: recording.steps,
                };
                (run, outcome)
            }
            Some(read) if read.steps_before == 0 => {
                // Divergence before the first step: nothing to reuse.
                let run = self.run_bounded(input, sink, max_steps, work_per_block);
                (run, SnapshotOutcome::Miss)
            }
            Some(read) => {
                let mut st = EngineState {
                    budget: max_steps,
                    steps_left: max_steps - read.steps_before,
                    work_per_block,
                    frames: frames_at(recording, read.ev_cursor),
                };
                replay_events(&recording.events[..read.ev_cursor], sink);
                let end = self.exec_loop(input, &mut st, read.pc, sink, &mut NoTape);
                let outcome = SnapshotOutcome::Resumed {
                    skipped_steps: read.steps_before,
                };
                (finish(end, &st), outcome)
            }
        }
    }

    /// The control-relevant decision the input-reading op at `pc` makes
    /// on `input`: the chosen successor pc for guards and switches, the
    /// iteration count for loop heads. Two inputs on which every
    /// recorded read's decision agrees drive byte-identical traces —
    /// the engine has no other input-dependent state — which is what
    /// lets [`first_diverging_read`] treat byte differences that leave
    /// the decision unchanged as non-events. Must mirror the
    /// corresponding [`CompiledProgram::exec_loop`] arms exactly.
    fn read_decision(&self, pc: u32, input: &[u8]) -> u64 {
        let op = self.ops[pc as usize];
        match op.tag {
            OpTag::ByteGuard => {
                u64::from(if input.get(op.a as usize).copied() == Some(op.d as u8) {
                    op.b
                } else {
                    op.c
                })
            }
            OpTag::MaskGuard => {
                let mask = (op.d >> 8) as u8;
                let value = op.d as u8;
                u64::from(match input.get(op.a as usize) {
                    Some(&byte) if byte & mask == value => op.b,
                    _ => op.c,
                })
            }
            OpTag::MagicGuard => {
                let (start, len) = self.magic_spans[op.d as usize];
                let magic = &self.magic_arena[start as usize..(start + len) as usize];
                let matched = input
                    .get(op.a as usize..op.a as usize + magic.len())
                    .is_some_and(|window| window == magic);
                u64::from(if matched { op.b } else { op.c })
            }
            OpTag::Switch => u64::from(match input.get(op.a as usize) {
                Some(&byte) => self.switch_tables[(op.b as usize) * 256 + usize::from(byte)],
                None => op.c,
            }),
            OpTag::LoopHead => match input.get(op.a as usize) {
                Some(&byte) if op.d > 0 => u64::from(byte % op.d as u8),
                _ => 0,
            },
            _ => unreachable!("reads are recorded only at input-reading ops"),
        }
    }

    /// The threaded dispatch loop. Monomorphized per (sink, recorder)
    /// pair; `NoTape` erases all recording code. Semantics mirror the
    /// tree walker op for op — step charging, event order, loop
    /// unrolling, budget-boundary behaviour.
    fn exec_loop<S: TraceSink + ?Sized, R: Record>(
        &self,
        input: &[u8],
        st: &mut EngineState,
        mut pc: u32,
        sink: &mut S,
        rec: &mut R,
    ) -> RawEnd {
        assert!(self.lowered, "cannot execute an incomplete lowering");
        loop {
            if st.steps_left == 0 {
                return RawEnd::Hang { planted: false };
            }
            st.steps_left -= 1;
            burn_work(st.work_per_block);
            sink.on_block(pc as usize);
            rec.block(pc);
            let op = self.ops[pc as usize];
            match op.tag {
                OpTag::Jump => pc = op.a,
                OpTag::ByteGuard => {
                    rec.read(st, pc, op.a, 1);
                    pc = if input.get(op.a as usize).copied() == Some(op.d as u8) {
                        op.b
                    } else {
                        op.c
                    };
                }
                OpTag::MaskGuard => {
                    rec.read(st, pc, op.a, 1);
                    let mask = (op.d >> 8) as u8;
                    let value = op.d as u8;
                    pc = match input.get(op.a as usize) {
                        Some(&byte) if byte & mask == value => op.b,
                        _ => op.c,
                    };
                }
                OpTag::MagicGuard => {
                    let (start, len) = self.magic_spans[op.d as usize];
                    let magic = &self.magic_arena[start as usize..(start + len) as usize];
                    let matched = if R::ACTIVE {
                        // The run depends only on the bytes up to and
                        // including the first mismatch (or the whole span
                        // on a match) — record exactly that dependency.
                        let mut matched = true;
                        let mut checked = len;
                        for (i, expected) in magic.iter().enumerate() {
                            if input.get(op.a as usize + i).copied() != Some(*expected) {
                                matched = false;
                                checked = i as u32 + 1;
                                break;
                            }
                        }
                        rec.read(st, pc, op.a, checked);
                        matched
                    } else {
                        // No recorder: one slice comparison decides the
                        // branch (out-of-range spans mismatch, exactly as
                        // the per-byte walk classifies them).
                        input
                            .get(op.a as usize..op.a as usize + magic.len())
                            .is_some_and(|window| window == magic)
                    };
                    pc = if matched { op.b } else { op.c };
                }
                OpTag::Switch => {
                    rec.read(st, pc, op.a, 1);
                    pc = match input.get(op.a as usize) {
                        Some(&byte) => {
                            self.switch_tables[(op.b as usize) * 256 + usize::from(byte)]
                        }
                        None => op.c,
                    };
                }
                OpTag::LoopHead => {
                    rec.read(st, pc, op.a, 1);
                    let iters = match input.get(op.a as usize) {
                        Some(&byte) if op.d > 0 => u64::from(byte % op.d as u8),
                        _ => 0,
                    };
                    let charge = 2 * iters;
                    if st.steps_left >= charge {
                        // The budget provably survives the whole unrolled
                        // loop: charge it in one subtraction and skip the
                        // per-iteration exhaustion checks (with a no-op
                        // sink the iteration body compiles away entirely).
                        st.steps_left -= charge;
                        for _ in 0..iters {
                            burn_work(st.work_per_block);
                            sink.on_block(op.b as usize);
                            rec.block(op.b);
                            burn_work(st.work_per_block);
                            sink.on_block(pc as usize);
                            rec.block(pc);
                        }
                    } else {
                        // Exhaustion lands inside the loop: walk it with
                        // per-step checks so the hang fires on the exact
                        // body or back-edge step the tree walker reports.
                        for _ in 0..iters {
                            if st.steps_left == 0 {
                                return RawEnd::Hang { planted: false };
                            }
                            st.steps_left -= 1;
                            burn_work(st.work_per_block);
                            sink.on_block(op.b as usize);
                            rec.block(op.b);
                            if st.steps_left == 0 {
                                return RawEnd::Hang { planted: false };
                            }
                            st.steps_left -= 1;
                            burn_work(st.work_per_block);
                            sink.on_block(pc as usize);
                            rec.block(pc);
                        }
                    }
                    pc = op.c;
                }
                OpTag::Call => {
                    sink.on_call(op.b as usize);
                    rec.call(op.b, op.c);
                    st.frames.push(Frame {
                        ret_pc: op.c,
                        site: op.b,
                    });
                    pc = op.a;
                }
                OpTag::Crash => return RawEnd::Crash(op.a),
                OpTag::Hang => {
                    st.steps_left = 0;
                    return RawEnd::Hang { planted: true };
                }
                OpTag::Return => match st.frames.pop() {
                    Some(frame) => {
                        sink.on_return();
                        rec.ret();
                        pc = frame.ret_pc;
                    }
                    None => return RawEnd::Done,
                },
            }
        }
    }
}

/// Finds the first recorded read (in step order) whose op genuinely
/// *decides differently* on `input` than it did on the recorded input.
///
/// A differing byte inside a watchpoint's span is necessary but not
/// sufficient for divergence: the engine carries no mutable state besides
/// pc, frames and the step counter, so as long as the op's
/// control-relevant decision ([`CompiledProgram::read_decision`]) comes
/// out the same, the trace continues byte-identically past it. Checking
/// the decision instead of the bytes turns e.g. a bit flip in a byte some
/// guard inspects (but whose comparison still fails) into a full replay.
///
/// Uses the per-byte CSR lists when available — walking only the lists of
/// genuinely differing bytes, with an early stop once a list passes the
/// best candidate — and the linear step-order scan otherwise. Both paths
/// implement the identical predicate, so the resume point never depends
/// on which one ran.
fn first_diverging_read<'r>(
    compiled: &CompiledProgram,
    recording: &'r ExecRecording,
    input: &[u8],
    diff: &DiffRange,
) -> Option<&'r ReadPoint> {
    let decision_changed = |read: &ReadPoint| {
        compiled.read_decision(read.pc, &recording.input) != compiled.read_decision(read.pc, input)
    };
    if recording.read_index_ok {
        let hi = diff.hi.min(recording.read_csr_idx.len().saturating_sub(1));
        let mut best = u32::MAX;
        for offset in diff.lo..hi {
            if recording.input.get(offset) == input.get(offset) {
                continue;
            }
            let start = recording.read_csr_idx[offset] as usize;
            let end = recording.read_csr_idx[offset + 1] as usize;
            // Consecutive list entries from the same op (a loop head
            // re-reading its byte) share one decision check.
            let mut last: Option<(u32, bool)> = None;
            for &ri in &recording.read_csr_data[start..end] {
                if ri >= best {
                    break;
                }
                let pc = recording.reads[ri as usize].pc;
                let changed = match last {
                    Some((last_pc, changed)) if last_pc == pc => changed,
                    _ => {
                        let changed = decision_changed(&recording.reads[ri as usize]);
                        last = Some((pc, changed));
                        changed
                    }
                };
                if changed {
                    best = ri;
                    break;
                }
            }
        }
        (best != u32::MAX).then(|| &recording.reads[best as usize])
    } else {
        recording.reads.iter().find(|read| {
            diff.affects(
                &recording.input,
                input,
                read.offset as usize,
                read.len as usize,
            ) && decision_changed(read)
        })
    }
}

/// Replays a tape prefix into `sink` (event order matches the live engine
/// exactly). A single branch-predictable pass over the dense word array;
/// with a no-op sink the whole scan is dead code and vanishes.
fn replay_events<S: TraceSink + ?Sized>(events: &[u32], sink: &mut S) {
    for &word in events {
        match word >> 30 {
            0 => sink.on_block(word as usize),
            1 => sink.on_call((word & EV_PAYLOAD) as usize),
            _ => sink.on_return(),
        }
    }
}

/// Rebuilds the call-frame stack live at event-tape position `cursor` by
/// merging the recorded call/return positions — O(calls + returns), never
/// a walk over the whole tape.
fn frames_at(recording: &ExecRecording, cursor: usize) -> Vec<Frame> {
    let calls = &recording.call_pos;
    let rets = &recording.ret_pos;
    let mut frames: Vec<Frame> = Vec::new();
    let (mut ci, mut ri) = (0usize, 0usize);
    loop {
        let next_call = calls.get(ci).map(|&p| p as usize).filter(|&p| p < cursor);
        let next_ret = rets.get(ri).map(|&p| p as usize).filter(|&p| p < cursor);
        match (next_call, next_ret) {
            (Some(call), Some(ret)) if call < ret => {
                frames.push(recording.call_frames[ci]);
                ci += 1;
            }
            (Some(_), Some(_)) | (None, Some(_)) => {
                frames.pop();
                ri += 1;
            }
            (Some(_), None) => {
                frames.push(recording.call_frames[ci]);
                ci += 1;
            }
            (None, None) => break,
        }
    }
    frames
}

/// Assembles the public [`BoundedRun`] from a raw engine end state.
fn finish(end: RawEnd, st: &EngineState) -> BoundedRun {
    let (outcome, planted_hang) = match end {
        RawEnd::Done => (ExecOutcome::Ok, false),
        RawEnd::Crash(site) => (
            ExecOutcome::Crash {
                site: site as usize,
                stack: st.frames.iter().map(|f| f.site as usize).collect(),
            },
            false,
        ),
        RawEnd::Hang { planted } => (ExecOutcome::Hang, planted),
    };
    BoundedRun {
        outcome,
        steps: st.budget - st.steps_left,
        planted_hang,
    }
}

/// The same synthetic per-block work spin as the tree walker's
/// `ExecState::step` — observable only in wall-clock time.
#[inline]
fn burn_work(work_per_block: u32) {
    if work_per_block > 0 {
        let mut acc = 0u64;
        for unit in 0..work_per_block {
            acc = acc
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(u64::from(unit));
        }
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::{Interpreter, NullSink};

    fn magic_program() -> Program {
        ProgramBuilder::new("magic")
            .magic_gate(0, b"PNG!", false)
            .gate(4, b'x', true)
            .build()
            .unwrap()
    }

    #[test]
    fn diff_range_brackets_and_exact_bytes() {
        let parent = b"abcdef";
        assert!(DiffRange::between(parent, b"abcdef").is_none());
        let d = DiffRange::between(parent, b"abXdef").unwrap();
        assert_eq!((d.lo, d.hi), (2, 3));
        assert!(d.affects(parent, b"abXdef", 2, 1));
        assert!(d.affects(parent, b"abXdef", 0, 4));
        assert!(!d.affects(parent, b"abXdef", 0, 2));
        assert!(!d.affects(parent, b"abXdef", 3, 3));
        // Length change: everything from the divergence point on differs.
        let d = DiffRange::between(parent, b"abcd").unwrap();
        assert_eq!((d.lo, d.hi), (4, 6));
        assert!(d.affects(parent, b"abcd", 5, 1));
        assert!(!d.affects(parent, b"abcd", 0, 4));
        // Zero-length reads never count.
        assert!(!d.affects(parent, b"abcd", 4, 0));
    }

    #[test]
    fn magic_guard_records_exact_dependency_span() {
        let program = magic_program();
        let compiled = CompiledProgram::compile(&program);
        // Mismatch at index 1: the run depended on bytes [0, 2) only.
        let (_, rec) = compiled.record(b"PQNG!x", &mut NullSink, 1_000, 0);
        let magic_read = rec.reads.iter().find(|r| r.len > 1).unwrap();
        assert_eq!((magic_read.offset, magic_read.len), (0, 2));
        // Full match: the whole 4-byte span is a dependency.
        let (_, rec) = compiled.record(b"PNG!x", &mut NullSink, 1_000, 0);
        let magic_read = rec.reads.iter().find(|r| r.len > 1).unwrap();
        assert_eq!((magic_read.offset, magic_read.len), (0, 4));
    }

    #[test]
    fn csr_inversion_matches_linear_scan() {
        let program = magic_program();
        let compiled = CompiledProgram::compile(&program);
        let parent = b"PNG!a".to_vec();
        let (_, rec) = compiled.record(&parent, &mut NullSink, 1_000, 0);
        assert!(rec.read_index_ok);
        // Forcing the fallback flag makes first_diverging_read take the
        // linear step-order scan over the same recording.
        let mut linear_rec = rec.clone();
        linear_rec.read_index_ok = false;
        // Every single-byte mutation (and a truncation/extension pair)
        // must resolve to the same resume point through the per-byte CSR
        // lists as through the linear watchpoint scan.
        let mut children: Vec<Vec<u8>> = (0..parent.len())
            .map(|pos| {
                let mut child = parent.clone();
                child[pos] ^= 0x40;
                child
            })
            .collect();
        children.push(parent[..3].to_vec());
        children.push([&parent[..], b"tail"].concat());
        for child in children {
            let diff = DiffRange::between(&parent, &child).unwrap();
            let indexed = first_diverging_read(&compiled, &rec, &child, &diff).map(|r| r.ev_cursor);
            let linear =
                first_diverging_read(&compiled, &linear_rec, &child, &diff).map(|r| r.ev_cursor);
            assert_eq!(indexed, linear, "divergence for child {child:?}");
        }
    }

    #[test]
    fn unchanged_decision_mutation_replays_fully() {
        // A mutated byte that a guard reads — but whose comparison still
        // comes out the same way — is provably a non-event: the run must
        // be served entirely from the tape, bit-identically.
        let program = magic_program();
        let compiled = CompiledProgram::compile(&program);
        let parent = b"PNG!a".to_vec();
        let (_, rec) = compiled.record(&parent, &mut NullSink, 1_000, 0);
        // Byte 4 is read by the b'x' gate; 'a' -> 'b' still fails it.
        let (run, outcome) = compiled.run_resumed(&rec, b"PNG!b", &mut NullSink, 1_000, 0);
        assert!(matches!(outcome, SnapshotOutcome::FullReplay { .. }));
        assert_eq!(run, compiled.run_bounded(b"PNG!b", &mut NullSink, 1_000, 0));
        // 'a' -> 'x' flips the gate: genuine divergence, never a replay.
        let (run, outcome) = compiled.run_resumed(&rec, b"PNG!x", &mut NullSink, 1_000, 0);
        assert!(!matches!(outcome, SnapshotOutcome::FullReplay { .. }));
        assert_eq!(run, compiled.run_bounded(b"PNG!x", &mut NullSink, 1_000, 0));
    }

    #[test]
    fn resume_outcomes_classify_correctly() {
        let program = magic_program();
        let compiled = CompiledProgram::compile(&program);
        let parent = b"PNG!a".to_vec();
        let (_, rec) = compiled.record(&parent, &mut NullSink, 1_000, 0);

        // Identical child: full replay.
        let (run, outcome) = compiled.run_resumed(&rec, &parent, &mut NullSink, 1_000, 0);
        assert!(matches!(outcome, SnapshotOutcome::FullReplay { .. }));
        assert_eq!(run.steps, rec.steps());

        // Mutation past the magic, at a later read: resumes mid-run.
        let (run, outcome) = compiled.run_resumed(&rec, b"PNG!x", &mut NullSink, 1_000, 0);
        assert!(matches!(outcome, SnapshotOutcome::Resumed { .. }));
        let cold = compiled.run_bounded(b"PNG!x", &mut NullSink, 1_000, 0);
        assert_eq!(run, cold);

        // Mutation in the first read byte: miss.
        let (run, outcome) = compiled.run_resumed(&rec, b"XNG!a", &mut NullSink, 1_000, 0);
        assert_eq!(outcome, SnapshotOutcome::Miss);
        let cold = compiled.run_bounded(b"XNG!a", &mut NullSink, 1_000, 0);
        assert_eq!(run, cold);

        // Budget mismatch: miss, regardless of bytes.
        let (_, outcome) = compiled.run_resumed(&rec, &parent, &mut NullSink, 999, 0);
        assert_eq!(outcome, SnapshotOutcome::Miss);
    }

    #[test]
    fn overflowed_recording_always_misses() {
        let program = magic_program();
        let compiled = CompiledProgram::compile(&program);
        let (_, mut rec) = compiled.record(b"PNG!a", &mut NullSink, 1_000, 0);
        rec.overflowed = true;
        let (_, outcome) = compiled.run_resumed(&rec, b"PNG!a", &mut NullSink, 1_000, 0);
        assert_eq!(outcome, SnapshotOutcome::Miss);
    }

    #[test]
    fn switch_table_first_arm_wins_like_tree_scan() {
        let program = ProgramBuilder::new("dup")
            .switch_gate(0, &[7, 7, 42])
            .build()
            .unwrap();
        let compiled = CompiledProgram::compile(&program);
        let tree = Interpreter::with_mode(
            &program,
            crate::interp::ExecConfig::default(),
            bigmap_core::InterpMode::Tree,
        );
        for byte in [0u8, 7, 42, 200] {
            let input = [byte];
            let cold = compiled.run_bounded(&input, &mut NullSink, 1_000, 0);
            let walked = tree.run_bounded(&input, &mut NullSink, 1_000);
            assert_eq!(cold, walked);
        }
    }
}
