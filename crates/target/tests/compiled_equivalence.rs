//! Compiled-vs-tree engine equivalence.
//!
//! The compiled bytecode engine and the snapshot-resume path must be
//! observationally identical to the tree walker: same [`ExecOutcome`],
//! same full trace-event sequence (blocks, calls, returns), same step
//! counts — at every budget boundary. The campaign's bit-identical
//! trajectory guarantee across `BIGMAP_INTERP` modes rests on exactly
//! this property, so it is proven here over random generated programs ×
//! random inputs × random mutations, plus pinned adversarial boundary
//! cases (budget exhausted on a `LoopHead` back-edge, `MagicGuard`
//! spanning the input end).

use bigmap_target::{
    CompiledProgram, ExecConfig, GeneratorConfig, InterpMode, Interpreter, NoveltyOracle, NullSink,
    Program, ProgramBuilder, TraceSink,
};
use proptest::prelude::*;

/// Records the full event stream for sequence equality assertions.
/// Events: `(0, block)`, `(1, call_site)`, `(2, 0)` for returns.
#[derive(Default, Debug, PartialEq, Eq)]
struct Recorder {
    events: Vec<(u8, usize)>,
}

impl TraceSink for Recorder {
    fn on_block(&mut self, global_block: usize) {
        self.events.push((0, global_block));
    }
    fn on_call(&mut self, call_site: usize) {
        self.events.push((1, call_site));
    }
    fn on_return(&mut self) {
        self.events.push((2, 0));
    }
}

fn tree_interp(program: &Program) -> Interpreter<'_> {
    Interpreter::with_mode(program, ExecConfig::default(), InterpMode::Tree)
}

fn generated(seed: u64, functions: usize, gates: usize) -> Program {
    GeneratorConfig {
        seed,
        functions: functions.max(1),
        gates_per_function: gates.max(1),
        magic_gate_ratio: 0.3,
        switch_ratio: 0.3,
        loop_ratio: 0.3,
        ..Default::default()
    }
    .generate()
}

/// Asserts tree and compiled agree on outcome, event stream and steps at
/// the given budget; returns the agreed run for boundary derivation.
fn assert_equivalent_at(program: &Program, input: &[u8], budget: u64) -> bigmap_target::BoundedRun {
    let tree = tree_interp(program);
    let compiled = CompiledProgram::compile(program);
    assert!(compiled.is_lowered());

    let mut tree_events = Recorder::default();
    let walked = tree.run_bounded(input, &mut tree_events, budget);

    let mut compiled_events = Recorder::default();
    let fast = compiled.run_bounded(input, &mut compiled_events, budget, 0);

    assert_eq!(walked, fast, "BoundedRun diverged at budget {budget}");
    assert_eq!(
        tree_events, compiled_events,
        "trace-event sequence diverged at budget {budget}"
    );
    walked
}

/// Full equivalence sweep for one (program, input): unbounded run plus
/// the exact-exhaustion boundaries `steps - 1`, `steps`, `steps + 1`.
fn assert_equivalent(program: &Program, input: &[u8]) {
    let full = assert_equivalent_at(program, input, ExecConfig::default().max_steps);
    for boundary in [full.steps.saturating_sub(1), full.steps, full.steps + 1] {
        assert_equivalent_at(program, input, boundary);
    }
}

/// Asserts a snapshot-resumed child run is bit-identical to a cold run:
/// same `BoundedRun`, same event stream, and the same novelty-oracle
/// rolling path hash (the state the two-speed campaign keys on).
fn assert_resume_equivalent(program: &Program, parent: &[u8], child: &[u8], budget: u64) {
    let compiled = CompiledProgram::compile(program);
    let (_, recording) = compiled.record(parent, &mut NullSink, budget, 0);

    let mut cold_events = Recorder::default();
    let cold = compiled.run_bounded(child, &mut cold_events, budget, 0);
    let mut resumed_events = Recorder::default();
    let (resumed, _) = compiled.run_resumed(&recording, child, &mut resumed_events, budget, 0);

    assert_eq!(cold, resumed, "resumed BoundedRun diverged");
    assert_eq!(cold_events, resumed_events, "resumed event stream diverged");

    // The tree walker agrees too (transitivity, but pin it directly).
    let mut tree_events = Recorder::default();
    let walked = tree_interp(program).run_bounded(child, &mut tree_events, budget);
    assert_eq!(walked, resumed);
    assert_eq!(tree_events, resumed_events);

    // Rolling path hash: replaying the memoized prefix into the oracle
    // must leave it in the same state as a cold traced run.
    let mut cold_oracle = NoveltyOracle::new(program.block_count());
    cold_oracle.begin_exec();
    compiled.run_bounded(child, &mut cold_oracle, budget, 0);
    let mut resumed_oracle = NoveltyOracle::new(program.block_count());
    resumed_oracle.begin_exec();
    compiled.run_resumed(&recording, child, &mut resumed_oracle, budget, 0);
    assert_eq!(cold_oracle.path_hash(), resumed_oracle.path_hash());
    assert_eq!(cold_oracle.provably_seen(), resumed_oracle.provably_seen());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs × random inputs: identical outcomes, event
    /// sequences and step counts, including at exact budget boundaries.
    #[test]
    fn compiled_matches_tree_on_random_programs(
        seed in 0u64..10_000,
        functions in 1usize..6,
        gates in 1usize..10,
        input in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let program = generated(seed, functions, gates);
        assert_equivalent(&program, &input);
    }

    /// Random parent/child pairs through the snapshot path: resumes and
    /// replays are bit-identical to cold executions, for mutations,
    /// truncations and extensions alike.
    #[test]
    fn snapshot_resume_matches_cold_run(
        seed in 0u64..10_000,
        functions in 1usize..5,
        gates in 1usize..8,
        parent in prop::collection::vec(any::<u8>(), 0..64),
        flips in prop::collection::vec((0usize..64, any::<u8>()), 0..4),
        resize in -8isize..8,
    ) {
        let program = generated(seed, functions, gates);
        let mut child = parent.clone();
        for (pos, byte) in flips {
            if !child.is_empty() {
                let pos = pos % child.len();
                child[pos] = byte;
            }
        }
        if resize < 0 {
            child.truncate(child.len().saturating_sub(resize.unsigned_abs()));
        } else {
            child.extend(std::iter::repeat_n(0xA5, resize as usize));
        }
        assert_resume_equivalent(&program, &parent, &child, 100_000);
    }

    /// Budgets below the natural step count exercise mid-run exhaustion
    /// (including inside loop iterations and nested calls) on both
    /// engines and through the snapshot path.
    #[test]
    fn tight_budgets_agree_everywhere(
        seed in 0u64..5_000,
        input in prop::collection::vec(any::<u8>(), 0..48),
        budget in 1u64..200,
    ) {
        let program = generated(seed, 3, 6);
        assert_equivalent_at(&program, &input, budget);
        assert_resume_equivalent(&program, &input, &input, budget);
    }
}

#[test]
fn budget_exhausted_on_loop_back_edge() {
    // loop_gate(0, 16): input byte 5 → 5 iterations. The trace is
    // head, (body, head) × 5, … — steps: 1 + 2·5 = 11 to clear the loop.
    // Sweep every budget through the loop region so exhaustion lands on
    // the body step and the back-edge (head) step of every iteration.
    let program = ProgramBuilder::new("loop")
        .loop_gate(0, 16)
        .gate(1, b'z', false)
        .build()
        .unwrap();
    let input = [5u8, b'z'];
    for budget in 0..16 {
        assert_equivalent_at(&program, &input, budget);
    }
    assert_equivalent(&program, &input);
}

#[test]
fn magic_guard_spanning_input_end() {
    let program = ProgramBuilder::new("magic")
        .magic_gate(2, b"MAGIC", false)
        .build()
        .unwrap();
    // Inputs that end mid-magic: the guard's out-of-range reads must
    // classify identically, and a recording of the short parent must
    // treat an extension that completes the magic as affecting the read.
    for input in [
        &b""[..],
        b"xy",
        b"xyM",
        b"xyMA",
        b"xyMAGI",
        b"xyMAGIC",
        b"xyMAGICtail",
    ] {
        assert_equivalent(&program, input);
    }
    assert_resume_equivalent(&program, b"xyMAG", b"xyMAGIC", 10_000);
    assert_resume_equivalent(&program, b"xyMAGIC", b"xyMAG", 10_000);
}

#[test]
fn exact_budget_completion_stays_ok_on_both_engines() {
    // Mirrors the tree walker's pinned boundary semantics: a budget
    // exactly equal to the step count completes Ok, one less hangs.
    let program = ProgramBuilder::new("exact")
        .gate(0, b'a', false)
        .gate(1, b'b', false)
        .build()
        .unwrap();
    let full = assert_equivalent_at(&program, b"ab", ExecConfig::default().max_steps);
    let exact = assert_equivalent_at(&program, b"ab", full.steps);
    assert!(exact.outcome.is_ok());
    let starved = assert_equivalent_at(&program, b"ab", full.steps - 1);
    assert!(starved.outcome.is_hang());
    assert!(!starved.planted_hang);
}

#[test]
fn planted_hang_drains_budget_identically() {
    let program = ProgramBuilder::new("hang")
        .hang_gate(0, b'H')
        .gate(1, b'x', false)
        .build()
        .unwrap();
    let hang = assert_equivalent_at(&program, b"H", 1_000);
    assert!(hang.outcome.is_hang());
    assert!(hang.planted_hang);
    assert_eq!(hang.steps, 1_000, "planted hang drains the whole budget");
    assert_equivalent(&program, b"x");
}

#[test]
fn crash_stacks_agree_through_nested_calls() {
    // Generated programs plant crash sites behind guarded calls; sweep
    // seeds until both engines report a crash and compare the stacks.
    let mut crashes = 0;
    for seed in 0..200u64 {
        // Single-byte crash guards so a uniform input can reach the
        // planted sites; several sites spread across the call graph.
        let program = GeneratorConfig {
            seed,
            functions: 5,
            gates_per_function: 8,
            crash_sites: 3,
            crash_guard_width: 1,
            ..Default::default()
        }
        .generate();
        for byte in 0..=255u8 {
            let input = [byte; 48];
            let walked = tree_interp(&program).run_bounded(&input, &mut NullSink, 100_000);
            if walked.outcome.is_crash() {
                assert_equivalent(&program, &input);
                crashes += 1;
                break;
            }
        }
        if crashes >= 5 {
            return;
        }
    }
    panic!("no crashing (program, input) pairs found in the sweep");
}
