//! Figure 3: runtime composition with varying bitmap sizes.
//!
//! For the paper's six benchmarks (libpng, sqlite3, gvn, bloaty, openssl,
//! php) at 64 kB / 2 MB / 8 MB, runs an AFL-structure campaign with
//! per-stage timers and prints the time decomposition — execution, map
//! classify, map compare, map reset, map hash, others — normalized to one
//! million generated test cases, exactly as the figure reports. The paper's
//! finding to reproduce: map operations are negligible at 64 kB and
//! dominate at 8 MB.

use bigmap_analytics::TextTable;
use bigmap_bench::{report_header, Effort, PreparedBenchmark};
use bigmap_core::{MapScheme, MapSize, OpKind};
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::Budget;
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 3 — Runtime composition vs map size (AFL data structure)",
        effort,
        "hours per 1M test cases, extrapolated from the measured run",
    );

    let sizes = [MapSize::K64, MapSize::M2, MapSize::M8];
    let mut table = TextTable::new(vec![
        "benchmark",
        "map",
        "Execution",
        "Map Classify",
        "Map Compare",
        "Map Reset",
        "Map Hash",
        "Others",
        "total(h/1M)",
        "map-ops %",
    ]);

    for spec in BenchmarkSpec::figure3() {
        for size in sizes {
            let prepared = PreparedBenchmark::build(&spec, size, effort);
            // Split classify/compare pipeline so both columns populate,
            // matching how the paper's Figure 3 stacks its bars.
            let stats = prepared.run_campaign_opts(
                MapScheme::Flat,
                MetricKind::Edge,
                Budget::Time(effort.arm_budget()),
                3,
                false,
            );
            // Normalize to 1M test cases (the figure's y axis).
            let factor = 1_000_000.0 / stats.execs.max(1) as f64;
            let per_million = stats.ops.scaled(factor);
            let hours = |kind: OpKind| per_million.get(kind).as_secs_f64() / 3600.0;
            let total_h = per_million.total().as_secs_f64() / 3600.0;
            let map_ops_pct = 100.0 * per_million.map_ops_total().as_secs_f64()
                / per_million.total().as_secs_f64().max(1e-12);
            table.row(vec![
                spec.name.into(),
                size.label(),
                format!("{:.3}", hours(OpKind::Execution)),
                format!("{:.3}", hours(OpKind::Classify)),
                format!("{:.3}", hours(OpKind::Compare)),
                format!("{:.3}", hours(OpKind::Reset)),
                format!("{:.3}", hours(OpKind::Hash)),
                format!("{:.3}", hours(OpKind::Other)),
                format!("{total_h:.3}"),
                format!("{map_ops_pct:.1}"),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected shape (paper): map-ops share is negligible at 64k and \
         dominates at 8M, with classify/compare/reset the heavy hitters \
         and hash benchmark-dependent. (This harness runs the split \
         classify/compare pipeline so both columns populate; campaigns \
         default to the merged §IV-E pipeline.)"
    );
}
