//! Compiled-engine throughput: tree walker vs flattened bytecode vs
//! snapshot resets, plus the Figure-6-style crossover shift.
//!
//! Three raw-execution engines run the identical parent + mutated-children
//! streams (`NullSink`, no coverage pipeline) over the Table II suite.
//! The child mix per parent mirrors the default campaign loop: the
//! AFL-style deterministic sweep (walking bit flips / arithmetic /
//! interesting values — the campaign's own `Mutator::deterministic`
//! call) followed by a havoc batch. Engines under test:
//!
//! * `tree` — the CFG-walking interpreter,
//! * `compiled` — the flattened struct-of-arrays bytecode engine,
//! * `snapshot` — the compiled engine with each parent's run memoized
//!   once, so every child resumes from the last step whose input-read
//!   decision provably diverges under its mutated bytes (most children
//!   replay entirely).
//!
//! All three are observationally identical (see
//! `crates/target/tests/compiled_equivalence.rs`); this harness measures
//! only the throughput gap and the snapshot hit rate. Each suite runs at
//! two per-block cost levels: `work_per_block = 0`, the bookkeeping-bound
//! floor where a block is pure dispatch, and a modeled level standing in
//! for the computation a real target performs per block. The acceptance
//! target is a >=2x geomean for `snapshot` over `tree` on the quick
//! Table II subset at the modeled level.
//!
//! The second arm reruns the Figure 6 flat-vs-two-level size sweep under
//! `BIGMAP_INTERP=tree` and `=auto` campaigns: a faster executor shrinks
//! the per-exec time that map operations amortize against, so the map
//! size at which BigMap overtakes the flat AFL map ("the crossover")
//! shifts toward smaller maps. Results print as tables and land in
//! `BENCH_interp.json`.
//!
//! ```text
//! interp_speed [--quick | --full] [--out <path>]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bigmap_analytics::{geometric_mean, TextTable};
use bigmap_bench::{report_header, Effort, PreparedBenchmark};
use bigmap_core::{InterpMode, MapScheme, MapSize};
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::{Budget, Campaign, CampaignConfig, Mutator};
use bigmap_target::{BenchmarkSpec, ExecConfig, Interpreter, NullSink, SnapshotOutcome};

/// Havoc children mutated from each parent, on top of the deterministic
/// stage. AFL fuzzes a scheduled seed far more often than this; a modest
/// batch keeps the priming cost honest (one memoized run per parent,
/// exactly like the campaign loop).
const HAVOC_PER_PARENT: usize = 64;

/// Deterministic-stage children per parent, matching the campaign's own
/// `Mutator::deterministic(parent, 512)` sweep (walking bit flips,
/// arithmetic, interesting values — narrow single-site diffs).
const DETERMINISTIC_PER_PARENT: usize = 512;

/// `work_per_block` for the modeled-cost raw arm: each interpreter step
/// additionally spins this many multiply-add units, standing in for the
/// real computation a target performs per basic block. The w=0 arm is
/// the degenerate bookkeeping-bound floor (a "block" costs ~2ns of pure
/// dispatch); no real target executes blocks for free, so the modeled
/// arm is the acceptance regime. Replay serves memoized steps without
/// re-burning their work — that asymmetry is the entire point of
/// snapshot resets.
const MODELED_WORK: u32 = 16;

struct RawResult {
    execs_per_sec: f64,
    hits: u64,
    misses: u64,
    full_replays: u64,
    skipped_steps: u64,
    total_steps: u64,
}

/// Deterministic parent → mutated-children streams, shared by all three
/// engines so they execute byte-identical input sequences. The child mix
/// mirrors the default campaign loop: each scheduled parent gets its
/// AFL-style deterministic sweep (the campaign's own
/// `Mutator::deterministic(parent, 512)` call) followed by a havoc batch.
fn mutation_stream(prepared: &PreparedBenchmark) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let mut mutator = Mutator::new(0x1A7E5);
    prepared
        .seeds
        .iter()
        .map(|parent| {
            let mut children = Mutator::deterministic(parent, DETERMINISTIC_PER_PARENT);
            children.extend((0..HAVOC_PER_PARENT).map(|_| mutator.havoc(parent, None)));
            (parent.clone(), children)
        })
        .collect()
}

/// Per-pass tallies accumulated by [`stream_pass`].
#[derive(Default)]
struct PassStats {
    execs: u64,
    hits: u64,
    misses: u64,
    full_replays: u64,
    skipped_steps: u64,
    total_steps: u64,
}

/// One full pass over the stream: every parent and child runs once into
/// a null sink. The `snapshot` engine times its per-parent priming run
/// inside the pass — the memoization cost is part of the price it pays,
/// exactly as in the campaign.
fn stream_pass(
    interp: &Interpreter<'_>,
    stream: &[(Vec<u8>, Vec<Vec<u8>>)],
    mode: InterpMode,
    work: u32,
) -> PassStats {
    let budget = ExecConfig::default().max_steps;
    let mut stats = PassStats::default();
    if mode.uses_snapshots() {
        let compiled = interp.compiled().expect("suite programs lower cleanly");
        for (parent, children) in stream {
            let (_, recording) = compiled.record(parent, &mut NullSink, budget, work);
            stats.execs += 1;
            for child in children {
                let (run, outcome) =
                    compiled.run_resumed(&recording, child, &mut NullSink, budget, work);
                stats.execs += 1;
                stats.total_steps += run.steps;
                stats.skipped_steps += outcome.skipped_steps();
                match outcome {
                    SnapshotOutcome::Miss => stats.misses += 1,
                    SnapshotOutcome::FullReplay { .. } => {
                        stats.hits += 1;
                        stats.full_replays += 1;
                    }
                    SnapshotOutcome::Resumed { .. } => stats.hits += 1,
                }
            }
        }
    } else {
        for (parent, children) in stream {
            interp.run_bounded_mode(parent, &mut NullSink, budget, mode);
            stats.execs += 1;
            for child in children {
                interp.run_bounded_mode(child, &mut NullSink, budget, mode);
                stats.execs += 1;
            }
        }
    }
    stats
}

/// Raw engine throughput: one untimed warm-up pass over the stream
/// (page-in, branch-predictor and allocator warm-up), then whole-stream
/// passes repeated until the timed window reaches `min_measure` (at
/// least two passes). The quick stream is ~1k sub-millisecond execs, so
/// a fixed rep count would produce noise-dominated microsecond windows;
/// the duration floor keeps every measurement in the hundreds of
/// milliseconds.
fn run_raw(
    interp: &Interpreter<'_>,
    stream: &[(Vec<u8>, Vec<Vec<u8>>)],
    mode: InterpMode,
    work: u32,
    min_measure: std::time::Duration,
) -> RawResult {
    stream_pass(interp, stream, mode, work);
    let mut total = PassStats::default();
    let mut passes = 0usize;
    let start = Instant::now();
    while passes < 2 || start.elapsed() < min_measure {
        let pass = stream_pass(interp, stream, mode, work);
        total.execs += pass.execs;
        total.hits += pass.hits;
        total.misses += pass.misses;
        total.full_replays += pass.full_replays;
        total.skipped_steps += pass.skipped_steps;
        total.total_steps += pass.total_steps;
        passes += 1;
    }
    RawResult {
        execs_per_sec: total.execs as f64 / start.elapsed().as_secs_f64().max(1e-9),
        hits: total.hits,
        misses: total.misses,
        full_replays: total.full_replays,
        skipped_steps: total.skipped_steps,
        total_steps: total.total_steps,
    }
}

struct CrossoverPoint {
    size: MapSize,
    tree_ratio: f64,
    auto_ratio: f64,
}

/// One campaign arm for the crossover sweep.
fn campaign_throughput(
    prepared: &PreparedBenchmark,
    scheme: MapScheme,
    engine: InterpMode,
    budget: std::time::Duration,
) -> f64 {
    let interpreter = Interpreter::new(&prepared.program);
    let mut campaign = Campaign::new(
        CampaignConfig {
            scheme,
            map_size: prepared.instrumentation.map_size(),
            metric: MetricKind::Edge,
            budget: Budget::Time(budget),
            mutations_per_seed: 512,
            deterministic: false,
            seed: 0x5EED,
            interp: Some(engine),
            ..Default::default()
        },
        &interpreter,
        &prepared.instrumentation,
    );
    campaign.add_seeds(prepared.seeds.clone());
    campaign.run().throughput()
}

/// Interpolated log2(map bytes) where two-level overtakes flat (ratio
/// crosses 1.0), or `None` if the sweep never crosses.
fn crossover_log2(
    points: &[CrossoverPoint],
    ratio_of: impl Fn(&CrossoverPoint) -> f64,
) -> Option<f64> {
    for pair in points.windows(2) {
        let (a, b) = (ratio_of(&pair[0]), ratio_of(&pair[1]));
        if (a < 1.0) != (b < 1.0) {
            let la = (pair[0].size.bytes() as f64).log2();
            let lb = (pair[1].size.bytes() as f64).log2();
            let t = (1.0 - a) / (b - a);
            return Some(la + t * (lb - la));
        }
    }
    None
}

fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--out=") {
            return path.to_string();
        }
        if arg == "--out" {
            if let Some(path) = args.get(i + 1) {
                return path.clone();
            }
        }
    }
    "BENCH_interp.json".to_string()
}

struct BenchRow {
    name: &'static str,
    tree_eps: f64,
    compiled_eps: f64,
    snapshot_eps: f64,
    hit_rate: f64,
    full_rate: f64,
    skip_rate: f64,
}

struct SuiteResult {
    rows: Vec<BenchRow>,
    comp_geo: f64,
    snap_geo: f64,
    mean_hit: f64,
}

/// Runs the three raw engines over every benchmark at one
/// `work_per_block` level and prints the per-benchmark table.
fn run_suite(
    benchmarks: &[BenchmarkSpec],
    effort: Effort,
    work: u32,
    min_measure: std::time::Duration,
) -> SuiteResult {
    let mut table = TextTable::new(vec![
        "benchmark",
        "tree e/s",
        "compiled e/s",
        "snapshot e/s",
        "comp spd",
        "snap spd",
        "hit%",
        "full%",
        "skip%",
    ]);
    let mut rows = Vec::new();
    let mut compiled_speedups = Vec::new();
    let mut snapshot_speedups = Vec::new();

    for spec in benchmarks {
        // Map size is irrelevant for raw execution; K64 keeps prep cheap.
        let prepared = PreparedBenchmark::build(spec, MapSize::K64, effort);
        let stream = mutation_stream(&prepared);
        let config = ExecConfig {
            work_per_block: work,
            ..Default::default()
        };
        let tree_interp = Interpreter::with_mode(&prepared.program, config, InterpMode::Tree);
        let tree = run_raw(&tree_interp, &stream, InterpMode::Tree, work, min_measure);
        let compiled = run_raw(
            &tree_interp,
            &stream,
            InterpMode::Compiled,
            work,
            min_measure,
        );
        let snapshot = run_raw(&tree_interp, &stream, InterpMode::Auto, work, min_measure);

        let comp_spd = compiled.execs_per_sec / tree.execs_per_sec.max(1e-9);
        let snap_spd = snapshot.execs_per_sec / tree.execs_per_sec.max(1e-9);
        let hit_rate =
            100.0 * snapshot.hits as f64 / (snapshot.hits + snapshot.misses).max(1) as f64;
        let full_rate =
            100.0 * snapshot.full_replays as f64 / (snapshot.hits + snapshot.misses).max(1) as f64;
        let skip_rate = 100.0 * snapshot.skipped_steps as f64 / snapshot.total_steps.max(1) as f64;
        compiled_speedups.push(comp_spd);
        snapshot_speedups.push(snap_spd);
        table.row(vec![
            spec.name.to_string(),
            format!("{:.0}", tree.execs_per_sec),
            format!("{:.0}", compiled.execs_per_sec),
            format!("{:.0}", snapshot.execs_per_sec),
            format!("{comp_spd:.2}x"),
            format!("{snap_spd:.2}x"),
            format!("{hit_rate:.1}"),
            format!("{full_rate:.1}"),
            format!("{skip_rate:.1}"),
        ]);
        rows.push(BenchRow {
            name: spec.name,
            tree_eps: tree.execs_per_sec,
            compiled_eps: compiled.execs_per_sec,
            snapshot_eps: snapshot.execs_per_sec,
            hit_rate,
            full_rate,
            skip_rate,
        });
        eprintln!("  done: {} (work={work})", spec.name);
    }
    println!("{table}");
    let mean_hit = rows.iter().map(|r| r.hit_rate).sum::<f64>() / rows.len().max(1) as f64;
    SuiteResult {
        rows,
        comp_geo: geometric_mean(&compiled_speedups),
        snap_geo: geometric_mean(&snapshot_speedups),
        mean_hit,
    }
}

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Compiled engine — tree vs bytecode vs snapshot-reset throughput",
        effort,
        "raw exec/sec over identical parent+children streams (NullSink, no \
         coverage pipeline); snapshot arms pay their per-parent priming run \
         inside the timed loop; each suite runs twice — work_per_block=0 \
         (bookkeeping floor) and modeled per-block work; acceptance: \
         snapshot/tree geomean >=2x on the modeled arm",
    );

    let names: &[&str] = match effort {
        Effort::Quick => &["zlib", "libpng", "proj4", "sqlite3"],
        Effort::Standard => &["zlib", "libpng", "proj4", "harfbuzz", "sqlite3", "mem2reg"],
        Effort::Full => &[],
    };
    let benchmarks: Vec<BenchmarkSpec> = if names.is_empty() {
        BenchmarkSpec::table_ii()
    } else {
        names
            .iter()
            .map(|n| BenchmarkSpec::by_name(n).unwrap())
            .collect()
    };
    // Minimum timed window per engine measurement; see `run_raw`.
    let min_measure = match effort {
        Effort::Quick => std::time::Duration::from_millis(400),
        Effort::Standard => std::time::Duration::from_millis(1200),
        Effort::Full => std::time::Duration::from_millis(3000),
    };

    println!("-- work_per_block = 0 (bookkeeping-bound floor: a block costs pure dispatch) --");
    let floor = run_suite(&benchmarks, effort, 0, min_measure);
    println!(
        "floor (w=0): compiled/tree geomean {:.2}x, snapshot/tree geomean {:.2}x \
         (mean hit rate {:.1}%)",
        floor.comp_geo, floor.snap_geo, floor.mean_hit
    );

    println!();
    println!(
        "-- work_per_block = {MODELED_WORK} (modeled per-block target work; acceptance regime) --"
    );
    let modeled = run_suite(&benchmarks, effort, MODELED_WORK, min_measure);
    let (comp_geo, snap_geo, mean_hit) = (modeled.comp_geo, modeled.snap_geo, modeled.mean_hit);
    println!("compiled/tree geomean speedup: {comp_geo:.2}x");
    println!(
        "snapshot/tree geomean speedup: {snap_geo:.2}x \
         (acceptance target: >=2x; mean snapshot hit rate {mean_hit:.1}%)"
    );
    if snap_geo >= 2.0 {
        println!("acceptance: PASS — compiled + snapshot resets >=2x over the tree walker");
    } else {
        println!(
            "acceptance: BELOW TARGET on this host — the gap tracks how much \
             of an exec the mutated byte range invalidates; see EXPERIMENTS.md \
             for the reference run"
        );
    }

    // Figure-6-style crossover shift: flat-vs-two-level throughput ratio
    // across map sizes, tree campaigns vs auto (compiled + snapshots).
    println!();
    let sizes: &[MapSize] = if effort == Effort::Quick {
        &[MapSize::K64, MapSize::M2, MapSize::M8]
    } else {
        &MapSize::EVALUATED
    };
    let spec = BenchmarkSpec::by_name("libpng").unwrap();
    let arm_budget = effort.arm_budget();
    let mut xo_table = TextTable::new(vec![
        "map size",
        "tree flat e/s",
        "tree 2L e/s",
        "tree 2L/flat",
        "auto flat e/s",
        "auto 2L e/s",
        "auto 2L/flat",
    ]);
    let mut points = Vec::new();
    for &size in sizes {
        let prepared = PreparedBenchmark::build(&spec, size, effort);
        let tree_flat =
            campaign_throughput(&prepared, MapScheme::Flat, InterpMode::Tree, arm_budget);
        let tree_two =
            campaign_throughput(&prepared, MapScheme::TwoLevel, InterpMode::Tree, arm_budget);
        let auto_flat =
            campaign_throughput(&prepared, MapScheme::Flat, InterpMode::Auto, arm_budget);
        let auto_two =
            campaign_throughput(&prepared, MapScheme::TwoLevel, InterpMode::Auto, arm_budget);
        let tree_ratio = tree_two / tree_flat.max(1e-9);
        let auto_ratio = auto_two / auto_flat.max(1e-9);
        xo_table.row(vec![
            size.label(),
            format!("{tree_flat:.0}"),
            format!("{tree_two:.0}"),
            format!("{tree_ratio:.3}"),
            format!("{auto_flat:.0}"),
            format!("{auto_two:.0}"),
            format!("{auto_ratio:.3}"),
        ]);
        points.push(CrossoverPoint {
            size,
            tree_ratio,
            auto_ratio,
        });
    }
    println!("{xo_table}");
    let tree_xo = crossover_log2(&points, |p| p.tree_ratio);
    let auto_xo = crossover_log2(&points, |p| p.auto_ratio);
    match (tree_xo, auto_xo) {
        (Some(t), Some(a)) => println!(
            "crossover (two-level overtakes flat): tree at 2^{t:.2} B, \
             auto at 2^{a:.2} B — shift {:+.2} size doublings \
             (negative = faster execs pull the crossover toward smaller maps)",
            a - t
        ),
        _ => println!(
            "crossover: not bracketed by this sweep (tree: {tree_xo:?}, \
             auto: {auto_xo:?} in log2 bytes) — the ratio stayed on one side \
             of 1.0 at every evaluated size on this host"
        ),
    }

    // JSON artifact.
    let mut json = String::with_capacity(8 * 1024);
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"interp_speed\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", effort.label());
    let _ = writeln!(json, "  \"havoc_per_parent\": {HAVOC_PER_PARENT},");
    let _ = writeln!(
        json,
        "  \"deterministic_per_parent\": {DETERMINISTIC_PER_PARENT},"
    );
    let _ = writeln!(json, "  \"modeled_work_per_block\": {MODELED_WORK},");
    for (key, suite) in [("results_floor", &floor), ("results_modeled", &modeled)] {
        let _ = writeln!(json, "  \"{key}\": [");
        for (i, r) in suite.rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"tree_eps\": {:.0}, \"compiled_eps\": {:.0}, \
                 \"snapshot_eps\": {:.0}, \"hit_rate\": {:.3}, \"full_replay_rate\": {:.3}, \
                 \"skipped_step_rate\": {:.3}}}",
                r.name,
                r.tree_eps,
                r.compiled_eps,
                r.snapshot_eps,
                r.hit_rate,
                r.full_rate,
                r.skip_rate
            );
            json.push_str(if i + 1 < suite.rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ],\n");
    }
    let _ = writeln!(
        json,
        "  \"floor_snapshot_geomean_speedup\": {:.3},",
        floor.snap_geo
    );
    let _ = writeln!(json, "  \"compiled_geomean_speedup\": {comp_geo:.3},");
    let _ = writeln!(json, "  \"snapshot_geomean_speedup\": {snap_geo:.3},");
    let _ = writeln!(json, "  \"mean_snapshot_hit_rate\": {mean_hit:.3},");
    json.push_str("  \"crossover\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"size\": \"{}\", \"tree_ratio\": {:.4}, \"auto_ratio\": {:.4}}}",
            p.size.label(),
            p.tree_ratio,
            p.auto_ratio
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let fmt_xo = |xo: Option<f64>| match xo {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    };
    let _ = writeln!(
        json,
        "  \"tree_crossover_log2_bytes\": {},",
        fmt_xo(tree_xo)
    );
    let _ = writeln!(json, "  \"auto_crossover_log2_bytes\": {}", fmt_xo(auto_xo));
    json.push_str("}\n");
    let out_path = out_path_from_args();
    std::fs::write(&out_path, json).expect("write BENCH_interp.json");
    println!("\nwrote {out_path}");
}
