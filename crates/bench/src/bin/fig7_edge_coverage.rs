//! Figure 7: edge coverage with varying map sizes.
//!
//! Runs equal-time campaigns per (scheme, map size), collects the output
//! corpus and replays it against the bias-free structural coverage build
//! (distinct program edges — no bitmap, no collisions). The paper's
//! finding: AFL's coverage suffers on big maps purely because its
//! throughput collapses; BigMap plateaus everywhere; collision mitigation
//! itself barely moves edge coverage.

use bigmap_analytics::TextTable;
use bigmap_bench::{evaluated_sizes, report_header, Effort, PreparedBenchmark};
use bigmap_core::MapScheme;
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::{replay_edge_coverage, Budget};
use bigmap_target::{BenchmarkSpec, Interpreter};

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 7 — Edge coverage with varying map sizes",
        effort,
        "coverage = distinct structural edges of the replayed output corpus",
    );

    // The figure shows a benchmark subset for clarity; we use the same six
    // as Figure 3 plus two of the LLVM passes.
    let mut benchmarks = BenchmarkSpec::figure3();
    if effort != Effort::Quick {
        benchmarks.push(BenchmarkSpec::by_name("licm").unwrap());
        benchmarks.push(BenchmarkSpec::by_name("instcombine").unwrap());
    }

    let mut headers = vec!["benchmark".to_string()];
    for size in evaluated_sizes() {
        headers.push(format!("AFL@{}", size.label()));
        headers.push(format!("BigMap@{}", size.label()));
    }
    let mut table = TextTable::new(headers);

    for spec in &benchmarks {
        let mut row = vec![spec.name.to_string()];
        for &size in &evaluated_sizes() {
            for scheme in [MapScheme::Flat, MapScheme::TwoLevel] {
                let prepared = PreparedBenchmark::build(spec, size, effort);
                let (_, corpus) = prepared.run_campaign_with_corpus(
                    scheme,
                    MetricKind::Edge,
                    Budget::Time(effort.arm_budget()),
                    11,
                );
                let interp = Interpreter::new(&prepared.program);
                row.push(format!("{}", replay_edge_coverage(&interp, &corpus)));
            }
        }
        // Reorder: we filled AFL,BigMap per size already in column order.
        table.row(row);
        eprintln!("  done: {}", spec.name);
    }
    println!("{table}");
    println!(
        "expected shape (paper): columns are nearly flat for BigMap; AFL's \
         large-map columns sag on the bigger benchmarks (throughput loss \
         prevents reaching the plateau). Collision reduction itself does \
         not lift edge coverage much."
    );
}
