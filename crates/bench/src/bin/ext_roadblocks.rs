//! Extension (not a paper figure): roadblock-breaking strategies compared.
//!
//! The paper's §V-C uses laf-intel to get through magic-value comparisons;
//! AFL's `-x` dictionaries are the classic alternative (and CmpCov, which
//! §VI cites, is a third). This harness plants a battery of 4-byte magic
//! roadblocks with crashes behind them and measures how many each strategy
//! solves in equal time: plain havoc, dictionary havoc, laf-intel, and
//! laf-intel + dictionary.

use bigmap_analytics::TextTable;
use bigmap_bench::{report_header, Effort};
use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::Instrumentation;
use bigmap_fuzzer::{Budget, Campaign, CampaignConfig};
use bigmap_target::{apply_laf_intel, Interpreter, Program, ProgramBuilder};

fn battery(n: usize) -> Program {
    // n independent 4-byte magic gates, each guarding a crash.
    let mut builder = ProgramBuilder::new("roadblocks");
    for i in 0..n {
        let magic = [
            b'A' + (i % 26) as u8,
            0x10 + i as u8,
            0xC0 ^ (i as u8).wrapping_mul(37),
            b'!',
        ];
        builder = builder.magic_gate(i * 5, &magic, true);
    }
    builder.build().expect("builder output is valid")
}

fn run(program: &Program, dictionary: Vec<Vec<u8>>, budget: Budget, seed: u64) -> usize {
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, seed);
    let interpreter = Interpreter::new(program);
    let mut campaign = Campaign::new(
        CampaignConfig::builder()
            .scheme(MapScheme::TwoLevel)
            .map_size(MapSize::M2)
            .budget(budget)
            .dictionary(dictionary)
            .seed(seed)
            .build(),
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(vec![vec![0x55; 64]]);
    campaign.run().unique_crashes
}

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Extension — roadblock strategies: plain / dictionary / laf-intel",
        effort,
        "10x 4-byte magic gates, each guarding a crash; equal exec budgets",
    );

    let plain = battery(10);
    let (laf, _) = apply_laf_intel(&plain);
    let dict = plain.extract_dictionary();
    assert_eq!(dict.len(), 10);

    // The laf-intel arm must climb ten 32-rung bit-prefix ladders in one
    // queue; below ~40k execs per gate it reads as a false negative, so
    // quick mode stays above that floor rather than matching the other
    // binaries' 1/6-of-standard convention.
    let budget = Budget::Execs(match effort {
        Effort::Quick => 400_000,
        Effort::Standard => 600_000,
        Effort::Full => 3_000_000,
    });

    let mut table = TextTable::new(vec!["strategy", "crashes found (of 10)"]);
    for (label, program, dictionary) in [
        ("plain havoc", &plain, Vec::new()),
        ("dictionary", &plain, dict.clone()),
        ("laf-intel", &laf, Vec::new()),
        ("laf-intel + dictionary", &laf, dict.clone()),
    ] {
        let found = run(program, dictionary, budget, 99);
        table.row(vec![label.into(), found.to_string()]);
        eprintln!("  done: {label}");
    }
    println!("{table}");
    println!(
        "reading: plain havoc cannot beat a 2^32 lottery; both feedback \
         (laf-intel) and knowledge (dictionary) routes solve it, and they \
         compose. This is why §V-C's composition experiment matters: \
         feedback routes multiply map pressure, which only BigMap makes \
         affordable."
    );
}
