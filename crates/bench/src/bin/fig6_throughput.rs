//! Figure 6: test case generation throughput, AFL vs BigMap, across map
//! sizes.
//!
//! Runs both map schemes on all 19 benchmarks at 64 kB / 256 kB / 2 MB /
//! 8 MB (averaging multiple runs, as the paper does) and prints per-
//! benchmark throughput plus the per-size average speedups that headline
//! the paper: 0.98x / 1.4x / 4.5x / 33.1x.

use bigmap_analytics::{geometric_mean, mean, TextTable};
use bigmap_bench::{
    evaluated_sizes, report_header, telemetry_path_from_args, CheckpointArgs, Effort,
    PreparedBenchmark,
};
use bigmap_core::MapScheme;
use bigmap_fuzzer::{Budget, JsonlSink, TelemetryRegistry};
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 6 — Throughput of AFL vs BigMap with different map sizes",
        effort,
        "throughput in execs/sec; speedup = BigMap / AFL; avg of 2 runs per arm",
    );

    // `--telemetry <path>` attaches the live stats registry to every arm
    // and streams per-run snapshots to the file — the configuration used to
    // measure the telemetry layer's own overhead (see EXPERIMENTS.md).
    let registry = telemetry_path_from_args().map(|path| {
        let sink = JsonlSink::to_file(&path)
            .unwrap_or_else(|e| panic!("cannot open telemetry sink {}: {e}", path.display()));
        eprintln!(
            "  telemetry: attached to every arm, sink {}",
            path.display()
        );
        TelemetryRegistry::with_sink(sink)
    });

    // `--checkpoint <dir>` snapshots every arm periodically; `--resume`
    // continues a killed run from the last snapshots (the kill-and-resume
    // CI smoke job drives exactly this path).
    let checkpoint = CheckpointArgs::from_args();
    if let Some(args) = &checkpoint {
        eprintln!(
            "  checkpointing: dir {}, every {} execs{}",
            args.dir.display(),
            args.every,
            if args.resume { ", resuming" } else { "" }
        );
    }

    let sizes = evaluated_sizes();
    let runs = if effort == Effort::Quick { 1 } else { 2 };
    let benchmarks = if effort == Effort::Quick {
        BenchmarkSpec::figure3()
    } else {
        BenchmarkSpec::table_ii()
    };

    let mut headers = vec!["benchmark".to_string()];
    for size in sizes {
        headers.push(format!("AFL@{}", size.label()));
        headers.push(format!("BigMap@{}", size.label()));
        headers.push(format!("speedup@{}", size.label()));
    }
    let mut table = TextTable::new(headers);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];

    for spec in &benchmarks {
        let mut row = vec![spec.name.to_string()];
        for (i, &size) in sizes.iter().enumerate() {
            let prepared = PreparedBenchmark::build(spec, size, effort);
            let budget = Budget::Time(effort.arm_budget());
            let afl = prepared.mean_throughput_checkpointed(
                MapScheme::Flat,
                budget,
                runs,
                registry.as_ref(),
                checkpoint.as_ref(),
                &format!("fig6-{}-{}-afl", spec.name, size.label()),
            );
            let big = prepared.mean_throughput_checkpointed(
                MapScheme::TwoLevel,
                budget,
                runs,
                registry.as_ref(),
                checkpoint.as_ref(),
                &format!("fig6-{}-{}-big", spec.name, size.label()),
            );
            let speedup = big / afl.max(1e-9);
            speedups[i].push(speedup);
            row.push(format!("{afl:.0}"));
            row.push(format!("{big:.0}"));
            row.push(format!("{speedup:.2}x"));
        }
        table.row(row);
        // Progress for long runs.
        eprintln!("  done: {}", spec.name);
    }
    println!("{table}");

    let mut summary = TextTable::new(vec!["map size", "mean speedup", "geomean speedup", "paper"]);
    let paper = ["0.98x", "1.4x", "4.5x", "33.1x"];
    for (i, &size) in sizes.iter().enumerate() {
        summary.row(vec![
            size.label(),
            format!("{:.2}x", mean(&speedups[i])),
            format!("{:.2}x", geometric_mean(&speedups[i])),
            paper[i].into(),
        ]);
    }
    println!("Average speedups (BigMap over AFL):");
    println!("{summary}");
    println!(
        "expected shape (paper): ~parity at 64k, modest gain at 256k, large \
         gain at 2M, very large gain at 8M. Absolute factors depend on the \
         host's cache sizes and the simulated targets' execution cost."
    );
}
