//! Figure 9 companion: multi-process fleet scaling over the campaign
//! fabric.
//!
//! The paper's Figure 9 measures master–secondary scaling across
//! *threads*; this arm repeats the experiment across *processes*, with
//! corpus exchange over the binary wire protocol instead of a shared
//! in-memory hub. Each arm runs N worker processes (this same binary,
//! re-invoked with the `BIGMAP_FABRIC_WORKER` handshake) to a fixed
//! per-worker execution budget and reports aggregate throughput, its
//! scaling relative to the single-worker arm, and the parallel
//! efficiency normalized to the cores actually available — on a
//! one-core host, N processes time-slice one CPU, so the honest ideal is
//! `min(N, cores)`, not N.
//!
//! `--fleet-jsonl <path>` streams the merged fleet telemetry (every
//! worker's snapshots plus the fleet-total summary line) to a JSONL
//! file; the CI fleet-smoke job asserts on it.

use std::process::Command;
use std::time::{Duration, Instant};

use bigmap_analytics::TextTable;
use bigmap_bench::{
    effective_cores, parallel_efficiency, report_header, Effort, PreparedBenchmark,
};
use bigmap_core::MapSize;
use bigmap_fuzzer::{
    parse_jsonl, run_fleet, run_worker, FleetConfig, TelemetryEvent, WorkerOptions, WorkerRole,
};
use bigmap_target::BenchmarkSpec;

const BENCHMARK: &str = "gvn";
const SYNC_EVERY: u64 = 1_000;

/// Re-entry point for spawned workers: same binary, same arguments, the
/// role injected through the environment by `run_fleet`.
fn worker_main(role: WorkerRole) -> ! {
    let mut execs = 50_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--worker-execs" {
            execs = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("fig9_fleet worker: bad --worker-execs");
                std::process::exit(2);
            });
        }
    }
    let spec = BenchmarkSpec::by_name(BENCHMARK).expect("known benchmark");
    let prepared = PreparedBenchmark::build(&spec, MapSize::M2, Effort::Quick);
    let config = bigmap_fuzzer::CampaignConfig::builder()
        .scheme(bigmap_core::MapScheme::TwoLevel)
        .map_size(MapSize::M2)
        .budget_execs(execs)
        .deterministic(false)
        .build();
    let options = WorkerOptions {
        sync_every: SYNC_EVERY,
        checkpoint_dir: None,
        faults: None,
    };
    match run_worker(
        role,
        &prepared.program,
        &prepared.instrumentation,
        &config,
        &prepared.seeds,
        &options,
    ) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("fig9_fleet worker {}: {e}", role.index);
            std::process::exit(1);
        }
    }
}

fn main() {
    if let Some(role) = WorkerRole::from_env() {
        worker_main(role);
    }

    let effort = Effort::from_args();
    report_header(
        "Figure 9 (fabric) — multi-process fleet scaling (2MB map)",
        effort,
        "N worker processes over the wire protocol; aggregate execs/sec vs 1 worker",
    );
    let fleet_jsonl = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(flag) = args.next() {
            if flag == "--fleet-jsonl" {
                path = args.next().map(std::path::PathBuf::from);
            }
        }
        path
    };

    let per_worker_execs: u64 = (25_000.0 * effort.scale()).max(5_000.0) as u64;
    let worker_counts: &[usize] = if effort == Effort::Quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let cores = effective_cores(std::thread::available_parallelism());
    let exe = std::env::current_exe().expect("own path");

    let mut table = TextTable::new(vec![
        "workers".to_string(),
        "total execs".to_string(),
        "wall (s)".to_string(),
        "aggregate execs/s".to_string(),
        "scaling vs 1".to_string(),
        "efficiency".to_string(),
    ]);
    let mut base_rate = 0.0f64;
    let mut four_worker_efficiency = None;

    for (arm, &workers) in worker_counts.iter().enumerate() {
        let config = FleetConfig {
            workers,
            max_restarts: 1,
            backoff: Duration::from_millis(50),
            // Only the largest arm streams telemetry: one file, one fleet.
            fleet_jsonl: if workers == *worker_counts.last().unwrap() {
                fleet_jsonl.clone()
            } else {
                None
            },
            liveness_deadline: None,
        };
        let started = Instant::now();
        let stats = run_fleet(&config, |_| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--worker-execs").arg(per_worker_execs.to_string());
            cmd
        })
        .unwrap_or_else(|e| panic!("fleet of {workers} failed: {e}"));
        let wall = started.elapsed().as_secs_f64();
        if !stats.stats.all_completed() {
            eprintln!("  warning: fleet health {:?}", stats.stats.health);
        }
        let total = stats.stats.total_execs();
        let rate = total as f64 / wall.max(1e-9);
        if arm == 0 {
            base_rate = rate;
        }
        let scaling = rate / base_rate.max(1e-9);
        let efficiency = parallel_efficiency(scaling, workers, cores);
        if workers == 4 {
            four_worker_efficiency = Some(efficiency);
        }
        table.row(vec![
            workers.to_string(),
            total.to_string(),
            format!("{wall:.2}"),
            format!("{rate:.0}"),
            format!("{scaling:.2}x"),
            format!("{efficiency:.2}"),
        ]);
        eprintln!(
            "  done: {workers} workers, {} sync imports fleet-wide",
            stats.telemetry.get(TelemetryEvent::SyncImport)
        );
    }

    println!("{table}");
    println!(
        "host cores: {cores}; efficiency = (rate_N / rate_1) / min(N, cores). \
         Process workers add wire-protocol and scheduling overhead that the \
         thread fleet (fig9_parallel_scaling) does not pay; the acceptance \
         bar is >= 0.85 efficiency at 4 workers."
    );
    if let Some(eff) = four_worker_efficiency {
        let verdict = if eff >= 0.85 { "PASS" } else { "FAIL" };
        println!("4-worker efficiency: {eff:.2} -> {verdict} (threshold 0.85)");
    }

    if let Some(path) = fleet_jsonl {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read back fleet jsonl {}: {e}", path.display()));
        let snapshots =
            parse_jsonl(&text).unwrap_or_else(|e| panic!("fleet JSONL failed to parse: {e}"));
        assert!(!snapshots.is_empty(), "fleet sink produced no snapshots");
        assert_eq!(
            text.matches("\"fleet_total\":1").count(),
            1,
            "expected exactly one fleet summary line"
        );
        println!(
            "fleet telemetry: {} snapshots ({} nodes) written to {} and parsed back cleanly",
            snapshots.len(),
            snapshots
                .iter()
                .map(|s| s.node)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            path.display()
        );
    }
}
