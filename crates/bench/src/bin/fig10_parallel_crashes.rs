//! Figure 10: unique crashes with a varying number of fuzzing instances
//! (2 MB map).
//!
//! Same parallel setup as Figure 9, on the crash-bearing LLVM benchmarks,
//! reporting fleet-wide Crashwalk-unique crashes. The paper's finding:
//! BigMap finds 20% / 36% / 49% more unique crashes at 4 / 8 / 12
//! instances because AFL's execution throughput collapses.

use bigmap_analytics::TextTable;
use bigmap_bench::{report_header, Effort, PreparedBenchmark};
use bigmap_core::{MapScheme, MapSize};
use bigmap_fuzzer::{run_parallel, Budget, CampaignConfig};
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 10 — Unique crashes vs number of instances (2MB map)",
        effort,
        "fleet-wide Crashwalk dedup; master-secondary configuration",
    );

    let instance_counts: &[usize] = if effort == Effort::Quick {
        &[1, 2, 4]
    } else {
        &[1, 4, 8, 12]
    };
    let benchmarks = if effort == Effort::Quick {
        BenchmarkSpec::llvm()
            .into_iter()
            .take(2)
            .collect::<Vec<_>>()
    } else {
        BenchmarkSpec::llvm()
    };

    let mut headers = vec!["benchmark".to_string(), "fuzzer".to_string()];
    headers.extend(instance_counts.iter().map(|n| format!("crashes@{n}")));
    let mut table = TextTable::new(headers);
    let mut totals = vec![[0usize; 2]; instance_counts.len()];

    for spec in &benchmarks {
        let prepared =
            PreparedBenchmark::build_scaled(spec, MapSize::M2, effort, effort.crash_scale());
        for (scheme_idx, scheme) in [MapScheme::TwoLevel, MapScheme::Flat]
            .into_iter()
            .enumerate()
        {
            let mut row = vec![
                spec.name.to_string(),
                if scheme == MapScheme::TwoLevel {
                    "BigMap"
                } else {
                    "AFL"
                }
                .to_string(),
            ];
            for (i, &instances) in instance_counts.iter().enumerate() {
                let config = CampaignConfig::builder()
                    .scheme(scheme)
                    .map_size(MapSize::M2)
                    .budget(Budget::Time(effort.crash_arm_budget()))
                    .deterministic(true)
                    .build();
                let stats = run_parallel(
                    &prepared.program,
                    &prepared.instrumentation,
                    &config,
                    &prepared.seeds,
                    instances,
                    5_000,
                );
                totals[i][scheme_idx] += stats.unique_crashes;
                row.push(stats.unique_crashes.to_string());
            }
            table.row(row);
            eprintln!("  done: {} / {scheme:?}", spec.name);
        }
    }
    println!("{table}");
    let mut summary = TextTable::new(vec!["instances", "BigMap total", "AFL total", "gain %"]);
    for (i, &n) in instance_counts.iter().enumerate() {
        let (big, afl) = (totals[i][0], totals[i][1]);
        summary.row(vec![
            n.to_string(),
            big.to_string(),
            afl.to_string(),
            if afl > 0 {
                format!("{:+.0}", 100.0 * (big as f64 / afl as f64 - 1.0))
            } else {
                "-".into()
            },
        ]);
    }
    println!("Totals across benchmarks:");
    println!("{summary}");
    println!("expected shape (paper): the BigMap-over-AFL crash gain widens with the instance count (paper: +20%/+36%/+49% at 4/8/12).");
}
