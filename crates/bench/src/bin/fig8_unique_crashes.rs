//! Figure 8: unique crashes found with varying map sizes (LLVM benchmarks).
//!
//! Equal-time campaigns per (scheme, map size), Crashwalk deduplication.
//! The paper's finding: going 64k → 256k helps both fuzzers (fewer
//! collisions); 2M and 8M keep helping BigMap but hurt AFL (throughput
//! collapse), so AFL peaks at 256k while BigMap keeps its gains.
//!
//! Crash discovery is a day-scale phenomenon (the paper ran 24 hours;
//! crashes sit behind guard ladders that only get mutation attention once
//! the discovery burst subsides), so alongside the per-arm crash counts
//! this harness reports the *mechanism observables* that reproduce at any
//! budget: per-arm executions (the throughput side) and distinct coverage
//! keys discovered plus their Equation-1 collision rate at the arm's map
//! size (the feedback-loss side).

use bigmap_analytics::{collision_rate, TextTable};
use bigmap_bench::{evaluated_sizes, report_header, Effort, PreparedBenchmark};
use bigmap_core::MapScheme;
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::Budget;
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 8 — Unique crashes with varying map sizes (LLVM benchmarks)",
        effort,
        "unique = Crashwalk dedup; keys/coll% show the collision mechanism at any budget",
    );

    let benchmarks = if effort == Effort::Quick {
        BenchmarkSpec::llvm()
            .into_iter()
            .take(2)
            .collect::<Vec<_>>()
    } else {
        BenchmarkSpec::llvm()
    };

    for spec in &benchmarks {
        let mut table = TextTable::new(vec![
            "arm",
            "execs",
            "keys",
            "coll% (Eq.1)",
            "unique crashes",
        ]);
        for &size in &evaluated_sizes() {
            for scheme in [MapScheme::Flat, MapScheme::TwoLevel] {
                let prepared =
                    PreparedBenchmark::build_scaled(spec, size, effort, effort.crash_scale());
                let stats = prepared.run_campaign(
                    scheme,
                    MetricKind::Edge,
                    Budget::Time(effort.crash_arm_budget()),
                    23,
                );
                // Distinct keys discovered: BigMap's used_key is exact; for
                // the flat map use the virgin-map discovery count.
                let keys = match scheme {
                    MapScheme::TwoLevel => stats.used_len,
                    MapScheme::Flat => stats.discovered_slots,
                };
                table.row(vec![
                    format!("{scheme}@{}", size.label()),
                    stats.execs.to_string(),
                    keys.to_string(),
                    format!(
                        "{:.1}",
                        100.0 * collision_rate(size.bytes() as u64, keys as u64)
                    ),
                    stats.unique_crashes.to_string(),
                ]);
            }
        }
        println!("{}:", spec.name);
        println!("{table}");
        eprintln!("  done: {}", spec.name);
    }
    println!(
        "expected shape (paper): AFL peaks at 256k (collisions vs \
         throughput trade-off); BigMap is flat-or-rising with map size. \
         At seconds-scale budgets the crash columns are sparse (crashes \
         need day-scale attention); the mechanism shows in the other \
         columns — AFL's exec column collapsing with map size, and the \
         64k arms discovering measurably fewer keys than the 2M arms \
         (collision-hidden feedback) at double-digit Eq.1 collision rates."
    );
}
