//! Table I: access patterns of the bitmap operations.
//!
//! Feeds the address traces each data structure generates during the
//! per-test-case pipeline through the simulated Xeon E5645 hierarchy and
//! prints measured temporal locality (line-grain hit ratio), spatial
//! locality (same-pass line reuse), and cache pollution (dead-line
//! fraction), with the paper's qualitative High/Low/None labels derived
//! from thresholds. Rows follow the paper's table: Update vs Others, per
//! bitmap (BigMap's update splits into Index + Coverage).

use bigmap_analytics::TextTable;
use bigmap_bench::{report_header, Effort};
use bigmap_cache::{trace_bigmap, trace_flat, TraceRow, TraceWorkload};

fn print_rows(structure: &str, rows: &[TraceRow]) {
    println!("{structure}:");
    let mut table = TextTable::new(vec![
        "operation",
        "bitmap",
        "accesses/exec",
        "temporal-hit %",
        "same-pass reuse %",
        "dead bytes %",
        "temporal",
        "spatial",
        "pollution",
    ]);
    let mut sorted = rows.to_vec();
    sorted.sort_by_key(|r| (r.op.label(), r.bitmap.label()));
    for r in sorted {
        table.row(vec![
            r.op.label().into(),
            r.bitmap.label().into(),
            format!("{:.0}", r.accesses_per_exec),
            format!("{:.1}", 100.0 * r.temporal_hit),
            format!("{:.1}", 100.0 * r.spatial_ratio),
            format!("{:.1}", 100.0 * r.dead_byte_fraction),
            r.temporal_label().into(),
            r.spatial_label().into(),
            r.pollution_label().into(),
        ]);
    }
    println!("{table}");
}

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Table I — Access patterns of the bitmap operations (cache simulation)",
        effort,
        "gvn-like workload on a 2MB map; simulated Xeon E5645 (32K L1 / 256K L2 / 12M L3)",
    );

    let mut workload = TraceWorkload::gvn_like(2 << 20);
    if effort == Effort::Quick {
        workload.active_keys = 12_000;
        workload.events_per_exec = 2_000;
        workload.executions = 4;
    }
    println!(
        "workload: {} active keys, {} events/exec, {} executions\n",
        workload.active_keys, workload.events_per_exec, workload.executions
    );

    print_rows("(a) AFL's data structure", &trace_flat(&workload));
    print_rows("(b) BigMap's data structure", &trace_bigmap(&workload));

    println!(
        "expected labels (paper Table I): (a) Update = high temporal / low \
         spatial / low pollution; Others = low temporal / high spatial / \
         high pollution. (b) Update Index like (a)'s update; Update \
         Coverage = high/high/none; Others Coverage = high/high/none; \
         Others never touch the Index bitmap.\n\
         note: at this workload's scale (~65k active keys) the *scattered* \
         update working sets (flat coverage, BigMap index) exceed the \
         256 KiB L2, so their measured temporal hit ratio drops below the \
         High threshold — run with --quick (12k keys) to see the paper's \
         small-working-set labels. BigMap's condensed coverage stays High \
         at every scale, which is the §IV-C2 comparison that matters."
    );
}
