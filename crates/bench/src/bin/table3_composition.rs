//! Table III: code coverage with laf-intel and N-gram composition.
//!
//! The §V-C experiment: apply the laf-intel transform to the LLVM
//! harnesses, fuzz them with the N-gram(3) metric under **BigMap at 64 kB
//! vs BigMap at 2 MB** (both arms use the two-level map — the experiment
//! isolates collision mitigation, not the data structure), and report
//! collision rate, replayed edge coverage and unique crashes. The paper's
//! finding: the big map cuts the collision rate from ~79% to ~7.5% and
//! lifts unique crashes by ~33%, while edge coverage stays flat.

use bigmap_analytics::{collision_rate, mean, TextTable};
use bigmap_bench::{
    report_header, telemetry_path_from_args, CheckpointArgs, Effort, PreparedBenchmark,
};
use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::{replay_edge_coverage, Budget, JsonlSink, TelemetryRegistry};
use bigmap_target::{apply_laf_intel, BenchmarkSpec, Interpreter};

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Table III — Coverage with laf-intel + N-gram(3) (BigMap 64k vs 2M)",
        effort,
        "both arms use BigMap; laf-intel applied to the target; metric = ngram3",
    );

    // `--telemetry <path>` streams one snapshot per campaign arm to the
    // given JSONL file.
    let registry = telemetry_path_from_args().map(|path| {
        let sink = JsonlSink::to_file(&path)
            .unwrap_or_else(|e| panic!("cannot open telemetry sink {}: {e}", path.display()));
        eprintln!("  telemetry: per-arm snapshots to {}", path.display());
        TelemetryRegistry::with_sink(sink)
    });

    // `--checkpoint <dir>` / `--resume`: crash arms run 8x longer than the
    // throughput arms, so they gain the most from surviving a kill.
    let checkpoint = CheckpointArgs::from_args();
    if let Some(args) = &checkpoint {
        eprintln!(
            "  checkpointing: dir {}, every {} execs{}",
            args.dir.display(),
            args.every,
            if args.resume { ", resuming" } else { "" }
        );
    }

    let benchmarks = if effort == Effort::Quick {
        BenchmarkSpec::llvm()
            .into_iter()
            .take(2)
            .collect::<Vec<_>>()
    } else {
        BenchmarkSpec::llvm()
    };

    let mut table = TextTable::new(vec![
        "benchmark(+laf,+ngram3)",
        "keys",
        "coll%@64k",
        "coll%@2M",
        "edges@64k",
        "edges@2M",
        "crashes@64k",
        "crashes@2M",
    ]);
    let (mut crashes_small, mut crashes_big) = (Vec::new(), Vec::new());
    let (mut edges_small, mut edges_big) = (Vec::new(), Vec::new());

    for spec in &benchmarks {
        let base = spec.build(effort.crash_scale());
        let (laf, stats) = apply_laf_intel(&base);
        eprintln!(
            "  {}: laf-intel split {} compares, +{} blocks",
            spec.name, stats.comparisons_split, stats.blocks_added
        );

        let mut row = vec![format!("{}", spec.name)];
        let mut keys_used = 0usize;
        let mut cells: Vec<(usize, usize)> = Vec::new(); // (edges, crashes)
        for size in [MapSize::K64, MapSize::M2] {
            let prepared = PreparedBenchmark::from_program(spec, laf.clone(), size, effort);
            let telemetry = registry.as_ref().map(|r| r.register(r.snapshots().len()));
            let arm_key = format!("table3-{}-{}", spec.name, size.label());
            let (stats, corpus) = prepared.run_campaign_with_corpus_checkpointed(
                MapScheme::TwoLevel,
                MetricKind::NGram(3),
                Budget::Time(effort.crash_arm_budget()),
                31,
                telemetry.clone(),
                checkpoint.as_ref().map(|args| (args, arm_key.as_str())),
            );
            if let (Some(registry), Some(telemetry)) = (&registry, &telemetry) {
                registry.emit(telemetry);
            }
            let interp = Interpreter::new(&prepared.program);
            let edges = replay_edge_coverage(&interp, &corpus);
            cells.push((edges, stats.unique_crashes));
            // used_key of the larger map ≈ distinct keys the metric
            // produced; use it for the collision-rate column.
            keys_used = keys_used.max(stats.used_len);
        }
        row.push(keys_used.to_string());
        row.push(format!(
            "{:.1}",
            100.0 * collision_rate(1 << 16, keys_used as u64)
        ));
        row.push(format!(
            "{:.1}",
            100.0 * collision_rate(2 << 20, keys_used as u64)
        ));
        row.push(cells[0].0.to_string());
        row.push(cells[1].0.to_string());
        row.push(cells[0].1.to_string());
        row.push(cells[1].1.to_string());
        edges_small.push(cells[0].0 as f64);
        edges_big.push(cells[1].0 as f64);
        crashes_small.push(cells[0].1 as f64);
        crashes_big.push(cells[1].1 as f64);
        table.row(row);
    }
    println!("{table}");

    let crash_gain = if mean(&crashes_small) > 0.0 {
        100.0 * (mean(&crashes_big) / mean(&crashes_small) - 1.0)
    } else {
        0.0
    };
    let edge_gain = if mean(&edges_small) > 0.0 {
        100.0 * (mean(&edges_big) / mean(&edges_small) - 1.0)
    } else {
        0.0
    };
    println!(
        "AVERAGE: unique crashes {} -> {} ({:+.0}% — paper: +33%); \
         edge coverage {:+.1}% (paper: ~flat)",
        mean(&crashes_small),
        mean(&crashes_big),
        crash_gain,
        edge_gain
    );
}
