//! Figure 9: scalability with parallel fuzzing (2 MB map).
//!
//! (a) Throughput normalized to the single-instance run, for 1/4/8/12
//! concurrent instances in the master–secondary configuration, both
//! fuzzers. (b) BigMap-over-AFL speedup from the ratio of total test cases
//! generated with an equal instance count. The paper's finding: neither
//! fuzzer scales 1:1 with a 2 MB map (the shared LLC saturates), AFL's
//! curve goes *negative* above four instances, and the BigMap/AFL speedup
//! is therefore super-linear in the instance count.

use bigmap_analytics::{normalize_to_first, TextTable};
use bigmap_bench::{
    report_header, telemetry_path_from_args, CheckpointArgs, Effort, PreparedBenchmark,
};
use bigmap_core::{MapScheme, MapSize};
use bigmap_fuzzer::{
    parse_jsonl, run_parallel_with_telemetry, run_supervised, Budget, CampaignConfig, JsonlSink,
    SupervisorConfig, TelemetryEvent, TelemetryRegistry,
};
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 9 — Parallel fuzzing scalability (2MB map, master-secondary)",
        effort,
        "per benchmark: total execs at 1/4/8/12 instances; normalized + speedup",
    );

    let telemetry_path = telemetry_path_from_args();
    let registry = telemetry_path.as_ref().map(|path| {
        let sink = JsonlSink::to_file(path)
            .unwrap_or_else(|e| panic!("cannot open telemetry sink {}: {e}", path.display()));
        eprintln!("  telemetry: streaming snapshots to {}", path.display());
        TelemetryRegistry::with_sink(sink)
    });

    // `--checkpoint <dir>` switches every fleet to the supervised runtime:
    // per-instance checkpoints under a per-arm subdirectory, crashed
    // workers restarted from their last snapshot, and `--resume` picks a
    // killed run back up from disk.
    let checkpoint = CheckpointArgs::from_args();
    if let Some(args) = &checkpoint {
        eprintln!(
            "  supervised fleets: checkpoint dir {}, every {} execs{}",
            args.dir.display(),
            args.every,
            if args.resume { ", resuming" } else { "" }
        );
    }

    let instance_counts: &[usize] = if effort == Effort::Quick {
        &[1, 2, 4]
    } else {
        &[1, 4, 8, 12]
    };
    let benchmarks = if effort == Effort::Quick {
        vec![BenchmarkSpec::by_name("gvn").unwrap()]
    } else {
        BenchmarkSpec::figure3()
    };

    let mut headers = vec!["benchmark".to_string(), "fuzzer".to_string()];
    for &n in instance_counts {
        headers.push(format!("execs@{n}"));
    }
    for &n in instance_counts {
        headers.push(format!("norm@{n}"));
    }
    let mut table = TextTable::new(headers);
    let mut speedup_table = TextTable::new({
        let mut h = vec!["benchmark".to_string()];
        h.extend(instance_counts.iter().map(|n| format!("speedup@{n}")));
        h
    });

    for spec in &benchmarks {
        let prepared = PreparedBenchmark::build(spec, MapSize::M2, effort);
        let mut totals: Vec<Vec<f64>> = Vec::new(); // [scheme][instance_idx]
        for scheme in [MapScheme::TwoLevel, MapScheme::Flat] {
            let mut per_count = Vec::new();
            for &instances in instance_counts {
                let config = CampaignConfig::builder()
                    .scheme(scheme)
                    .map_size(MapSize::M2)
                    .budget(Budget::Time(effort.arm_budget()))
                    .deterministic(true) // master runs deterministic stages
                    .build();
                let before = registry.as_ref().map(|r| r.fleet_totals());
                let stats = match &checkpoint {
                    Some(args) => {
                        let arm_key = format!(
                            "fig9-{}-{}-n{instances}",
                            spec.name,
                            if scheme == MapScheme::TwoLevel {
                                "big"
                            } else {
                                "afl"
                            }
                        );
                        let supervisor = SupervisorConfig {
                            checkpoint_every: args.every,
                            checkpoint_root: Some(args.prepare_arm(&arm_key)),
                            ..SupervisorConfig::resilient()
                        };
                        run_supervised(
                            &prepared.program,
                            &prepared.instrumentation,
                            &config,
                            &prepared.seeds,
                            instances,
                            5_000,
                            &supervisor,
                            registry.as_ref(),
                        )
                    }
                    None => run_parallel_with_telemetry(
                        &prepared.program,
                        &prepared.instrumentation,
                        &config,
                        &prepared.seeds,
                        instances,
                        5_000,
                        registry.as_ref(),
                    ),
                };
                if !stats.all_completed() {
                    eprintln!(
                        "  warning: {} / {scheme:?} @{instances}: fleet health {:?}",
                        spec.name, stats.health
                    );
                }
                if let (Some(registry), Some(before)) = (&registry, before) {
                    let after = registry.fleet_totals();
                    let delta = |event| after.get(event) - before.get(event);
                    eprintln!(
                        "  sync traffic: {} / {scheme:?} @{instances}: \
                         {} published, {} imported, {} rejected",
                        spec.name,
                        delta(TelemetryEvent::SyncPublish),
                        delta(TelemetryEvent::SyncImport),
                        delta(TelemetryEvent::ImportRejection),
                    );
                }
                per_count.push(stats.total_execs() as f64);
            }
            let norm = normalize_to_first(&per_count);
            let mut row = vec![
                spec.name.to_string(),
                if scheme == MapScheme::TwoLevel {
                    "BigMap"
                } else {
                    "AFL"
                }
                .to_string(),
            ];
            row.extend(per_count.iter().map(|e| format!("{e:.0}")));
            row.extend(norm.iter().map(|n| format!("{n:.2}")));
            table.row(row);
            totals.push(per_count);
            eprintln!("  done: {} / {scheme:?}", spec.name);
        }
        // Speedup per instance count: BigMap execs / AFL execs.
        let mut row = vec![spec.name.to_string()];
        for (big, afl) in totals[0].iter().zip(&totals[1]) {
            row.push(format!("{:.1}x", big / afl.max(1.0)));
        }
        speedup_table.row(row);
    }
    println!("(a) total execs and normalized scaling:");
    println!("{table}");
    println!("(b) BigMap-over-AFL speedup at equal instance count:");
    println!("{speedup_table}");
    println!(
        "expected shape (paper): BigMap's normalized curve rises with \
         instances (sub-linear but positive); AFL's flattens or falls; the \
         speedup grows super-linearly with the instance count (paper avg: \
         4.9x / 9.2x / 13.8x at 4 / 8 / 12)."
    );

    // Close the loop on the telemetry stream: read the JSONL back and make
    // sure every line parses (the CI smoke job relies on this check).
    if let Some(path) = telemetry_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read back telemetry {}: {e}", path.display()));
        let snapshots =
            parse_jsonl(&text).unwrap_or_else(|e| panic!("telemetry JSONL failed to parse: {e}"));
        assert!(
            !snapshots.is_empty(),
            "telemetry sink produced no snapshots"
        );
        println!(
            "telemetry: {} snapshots written to {} and parsed back cleanly",
            snapshots.len(),
            path.display()
        );
    }
}
