//! Figure 2: hash collision rate vs. bitmap size (Equation 1).
//!
//! Prints the analytic collision rate for the paper's sweep — map sizes
//! 64k to 32M, key populations 5k to 1M — plus a Monte-Carlo cross-check
//! column for a sample of cells and the §III birthday-bound remark.

use bigmap_analytics::{
    birthday_keys_for_probability, collision_rate, empirical_collision_rate, TextTable,
};
use bigmap_bench::{report_header, Effort};

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Figure 2 — Collision rate vs bitmap size (Equation 1)",
        effort,
        "rows: number of keys drawn; columns: map size; cells: collision rate (%)",
    );

    let sizes: Vec<(&str, u64)> = vec![
        ("64k", 1 << 16),
        ("128k", 1 << 17),
        ("256k", 1 << 18),
        ("512k", 1 << 19),
        ("1M", 1 << 20),
        ("2M", 1 << 21),
        ("4M", 1 << 22),
        ("8M", 1 << 23),
        ("16M", 1 << 24),
        ("32M", 1 << 25),
    ];
    let key_counts: Vec<(&str, u64)> = vec![
        ("5k", 5_000),
        ("10k", 10_000),
        ("20k", 20_000),
        ("50k", 50_000),
        ("100k", 100_000),
        ("200k", 200_000),
        ("500k", 500_000),
        ("1M", 1_000_000),
    ];

    let mut headers = vec!["keys \\ map".to_string()];
    headers.extend(sizes.iter().map(|(label, _)| label.to_string()));
    let mut table = TextTable::new(headers);
    for (key_label, n) in &key_counts {
        let mut row = vec![key_label.to_string()];
        for (_, h) in &sizes {
            row.push(format!("{:.2}", 100.0 * collision_rate(*h, *n)));
        }
        table.row(row);
    }
    println!("{table}");

    // Monte-Carlo cross-check on a diagonal sample.
    println!("Monte-Carlo cross-check (analytic vs measured, seed 42):");
    let mut check = TextTable::new(vec!["map", "keys", "analytic %", "measured %"]);
    for &(size_label, h, keys_label, n) in &[
        ("64k", 1u64 << 16, "50k", 50_000u64),
        ("256k", 1 << 18, "100k", 100_000),
        ("2M", 1 << 21, "500k", 500_000),
        ("8M", 1 << 23, "1M", 1_000_000),
    ] {
        check.row(vec![
            size_label.into(),
            keys_label.into(),
            format!("{:.3}", 100.0 * collision_rate(h, n)),
            format!("{:.3}", 100.0 * empirical_collision_rate(h, n, 42)),
        ]);
    }
    println!("{check}");

    println!(
        "Birthday bound (paper §III): ~50% probability of at least one \
         collision in a 64kB map after {} IDs (paper: ~300).",
        birthday_keys_for_probability(1 << 16, 0.5)
    );
}
