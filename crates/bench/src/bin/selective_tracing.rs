//! Two-speed execution: throughput of always-trace vs selective tracing
//! on trace-heavy arms.
//!
//! Selective tracing (`BIGMAP_TRACE_MODE=selective`) runs most test cases
//! through the untraced fast interpreter and re-traces only the ones the
//! novelty oracle cannot prove boring. The win is largest exactly where
//! tracing hurts most — the flat AFL map at large sizes, where every
//! traced exec also pays whole-map classify/compare. This harness measures
//! both modes on the same arms and attributes the gap with the
//! `fast_path_execs` / `retrace_execs` telemetry counters.
//!
//! The comparison is throughput-only by construction: the coverage
//! trajectory itself is mode-invariant (see `tests/kernel_trajectory.rs`
//! and the CI trace-mode equivalence job).

use std::sync::Arc;

use bigmap_analytics::{geometric_mean, TextTable};
use bigmap_bench::{report_header, Effort, PreparedBenchmark};
use bigmap_core::{MapScheme, MapSize, TraceMode};
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::{Budget, Campaign, CampaignConfig, Telemetry, TelemetryEvent};
use bigmap_target::{BenchmarkSpec, Interpreter};

/// One scheme × map-size arm. Flat at large sizes is the trace-heavy
/// regime the ≥2x acceptance target applies to; the two-level arm shows
/// the (smaller) gain that remains once BigMap has already condensed the
/// map ops.
const ARMS: [(MapScheme, MapSize, bool); 3] = [
    (MapScheme::Flat, MapSize::M2, true),
    (MapScheme::Flat, MapSize::M8, true),
    (MapScheme::TwoLevel, MapSize::M8, false),
];

/// Per-arm wall budget: 4x the harness default. The fast path only fires
/// on paths the oracle has already seen traced, so each selective run
/// pays an always-trace warm-up before its throughput climbs; arms short
/// enough to be all warm-up would understate the steady-state gap.
fn arm_budget(effort: Effort) -> std::time::Duration {
    effort.arm_budget() * 4
}

struct ModeResult {
    throughput: f64,
    execs: u64,
    fast: u64,
    retraced: u64,
}

fn run_mode(
    prepared: &PreparedBenchmark,
    scheme: MapScheme,
    mode: TraceMode,
    runs: usize,
    budget_each: std::time::Duration,
) -> ModeResult {
    let mut total_throughput = 0.0;
    let mut execs = 0;
    let mut fast = 0;
    let mut retraced = 0;
    for r in 0..runs {
        let interpreter = Interpreter::new(&prepared.program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme,
                map_size: prepared.instrumentation.map_size(),
                metric: MetricKind::Edge,
                budget: Budget::Time(budget_each),
                mutations_per_seed: 512,
                deterministic: false,
                merged_classify_compare: true,
                dictionary: Vec::new(),
                trim_new_entries: false,
                seed: 0x5EED + r as u64,
                exec: Default::default(),
                hang_budget: None,
                sparse: None,
                trace: Some(mode),
                interp: None,
            },
            &interpreter,
            &prepared.instrumentation,
        );
        let tel = Arc::new(Telemetry::new(0));
        campaign.set_telemetry(Arc::clone(&tel));
        campaign.add_seeds(prepared.seeds.clone());
        let stats = campaign.run();
        total_throughput += stats.throughput();
        execs += tel.get(TelemetryEvent::Exec);
        fast += tel.get(TelemetryEvent::FastPathExec);
        retraced += tel.get(TelemetryEvent::RetraceExec);
    }
    ModeResult {
        throughput: total_throughput / runs.max(1) as f64,
        execs,
        fast,
        retraced,
    }
}

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Two-speed execution — always-trace vs selective tracing throughput",
        effort,
        "speedup = selective / always execs/sec on the same arm; fast% and \
         retrace% partition selective-mode execs (their sum is 100% by the \
         telemetry invariant); per-arm budget is 4x the header figure so \
         selective runs get past the oracle warm-up",
    );

    let runs = if effort == Effort::Quick { 1 } else { 2 };
    // Trace-heavy targets are the *cheap* ones (small static edge counts):
    // the fast pass still executes the target untraced, so the speedup
    // ceiling is (exec + trace + map ops) / exec — highest where the
    // target's own execution is a small share of the traced cost. sqlite3
    // rides along as the exec-heavy control: its execution dominates, so
    // selective tracing is expected to be roughly throughput-neutral
    // there, and its arms are excluded from the acceptance geomean.
    let heavy_names: &[&str] = if effort == Effort::Quick {
        &["zlib", "libpng"]
    } else {
        &["zlib", "libpng", "proj4"]
    };
    let benchmarks: Vec<(BenchmarkSpec, bool)> = heavy_names
        .iter()
        .map(|name| (BenchmarkSpec::by_name(name).unwrap(), true))
        .chain(std::iter::once((
            BenchmarkSpec::by_name("sqlite3").unwrap(),
            false,
        )))
        .collect();

    let mut table = TextTable::new(vec![
        "benchmark",
        "arm",
        "always e/s",
        "selective e/s",
        "speedup",
        "fast%",
        "retrace%",
        "auto e/s",
        "auto spd",
    ]);
    let mut heavy_speedups = Vec::new();
    let mut twolevel_speedups = Vec::new();
    let mut control_speedups = Vec::new();

    for (spec, cheap_target) in &benchmarks {
        for &(scheme, size, flat_arm) in &ARMS {
            let prepared = PreparedBenchmark::build(spec, size, effort);
            let budget_each = arm_budget(effort);
            let always = run_mode(&prepared, scheme, TraceMode::Always, runs, budget_each);
            let selective = run_mode(&prepared, scheme, TraceMode::Selective, runs, budget_each);
            let auto = run_mode(&prepared, scheme, TraceMode::Auto, runs, budget_each);
            assert_eq!(
                always.fast + always.retraced,
                0,
                "always-trace arms must never touch the fast path"
            );
            assert_eq!(
                selective.fast + selective.retraced,
                selective.execs,
                "selective execs must partition into fast-path + re-traced"
            );
            assert!(
                auto.fast + auto.retraced <= auto.execs,
                "auto-mode direct-run execs carry neither counter"
            );
            let speedup = selective.throughput / always.throughput.max(1e-9);
            let auto_speedup = auto.throughput / always.throughput.max(1e-9);
            match (cheap_target, flat_arm) {
                (true, true) => heavy_speedups.push(speedup),
                (true, false) => twolevel_speedups.push((speedup, auto_speedup)),
                (false, _) => control_speedups.push(speedup),
            }
            let pct = |n: u64| 100.0 * n as f64 / selective.execs.max(1) as f64;
            table.row(vec![
                spec.name.to_string(),
                format!("{:?}@{}", scheme, size.label()),
                format!("{:.0}", always.throughput),
                format!("{:.0}", selective.throughput),
                format!("{speedup:.2}x"),
                format!("{:.1}", pct(selective.fast)),
                format!("{:.1}", pct(selective.retraced)),
                format!("{:.0}", auto.throughput),
                format!("{auto_speedup:.2}x"),
            ]);
        }
        eprintln!("  done: {}", spec.name);
    }
    println!("{table}");

    let heavy = geometric_mean(&heavy_speedups);
    let tl_selective: Vec<f64> = twolevel_speedups.iter().map(|&(s, _)| s).collect();
    let tl_auto: Vec<f64> = twolevel_speedups.iter().map(|&(_, a)| a).collect();
    let control = geometric_mean(&control_speedups);
    println!("trace-heavy (cheap targets, Flat@2M/8M) geomean speedup: {heavy:.2}x (acceptance target: >=2x)");
    println!(
        "two-level@8M geomean: selective {:.2}x, auto {:.2}x (map ops already \
         condensed, so forced-selective can lose to the re-execution cost; \
         auto's retrace-rate fallback is what bounds that regression)",
        geometric_mean(&tl_selective),
        geometric_mean(&tl_auto),
    );
    println!(
        "exec-heavy control (sqlite3) geomean speedup: {control:.2}x \
         (expected ~1x: target execution dominates, little traced cost to shed)"
    );
    if heavy >= 2.0 {
        println!("acceptance: PASS — selective tracing >=2x on trace-heavy arms");
    } else {
        println!(
            "acceptance: BELOW TARGET on this host — speedup depends on the \
             host's map-op cost relative to the simulated targets' execution \
             cost; see EXPERIMENTS.md for the reference run"
        );
    }
}
