//! Extension (not a paper figure): CollAFL-style static assignment vs
//! AFL's random IDs vs BigMap's map enlargement, on the Table II suite.
//!
//! The paper's §VI argues the two mitigations are orthogonal: CollAFL
//! removes collisions *within* a small map (but only for block/edge
//! metrics and by enlarging the map to fit all static IDs), while BigMap
//! makes any map size affordable so collisions can be diluted away for
//! *any* metric. This harness quantifies the static side of that argument
//! on our generated CFGs: colliding static edges under (a) random IDs at
//! 64 kB, (b) CollAFL-greedy IDs at 64 kB, (c) random IDs at 2 MB — the
//! BigMap answer.

use bigmap_analytics::table::fmt_count;
use bigmap_analytics::TextTable;
use bigmap_bench::{report_header, Effort};
use bigmap_core::MapSize;
use bigmap_coverage::collafl::{assign_collafl, random_assignment_collisions};
use bigmap_target::BenchmarkSpec;

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Extension — CollAFL-style static assignment vs map enlargement",
        effort,
        "colliding static edges per assignment strategy",
    );

    let benchmarks = if effort == Effort::Quick {
        BenchmarkSpec::table_ii()
            .into_iter()
            .take(6)
            .collect::<Vec<_>>()
    } else {
        BenchmarkSpec::table_ii()
    };

    let mut table = TextTable::new(vec![
        "benchmark",
        "static edges",
        "random@64k",
        "collafl@64k",
        "random@2M",
        "collafl gain",
    ]);

    for spec in &benchmarks {
        let program = spec.build(effort.scale());
        let edges = program.static_edge_pairs();
        let n = program.block_count();

        let random_64k = random_assignment_collisions(n, &edges, MapSize::K64, 7);
        let collafl_64k = assign_collafl(n, &edges, MapSize::K64, 7);
        let random_2m = random_assignment_collisions(n, &edges, MapSize::M2, 7);

        table.row(vec![
            spec.name.into(),
            fmt_count(edges.len()),
            fmt_count(random_64k),
            fmt_count(collafl_64k.colliding_edges),
            fmt_count(random_2m),
            if random_64k > 0 {
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - collafl_64k.colliding_edges as f64 / random_64k as f64)
                )
            } else {
                "-".into()
            },
        ]);
        eprintln!("  done: {}", spec.name);
    }
    println!("{table}");
    println!(
        "reading: CollAFL removes most static collisions without growing \
         the map, but only for the edge metric; enlarging the map (the \
         BigMap-enabled route) dilutes collisions for ANY metric — and \
         composing both is strictly better, as the paper suggests."
    );
}
