//! Table II: benchmark characteristics.
//!
//! Prints the paper's published characteristics next to the generated
//! substitutes' actual numbers at the chosen scale: static edges of the
//! generated program, empirically discovered edges (seed corpus replay +
//! a short fuzzing shakeout), and the 64 kB collision rate implied by the
//! discovered-edge count (Equation 1).

use bigmap_analytics::table::fmt_count;
use bigmap_analytics::{collision_rate, TextTable};
use bigmap_bench::{report_header, Effort, PreparedBenchmark};
use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::MetricKind;
use bigmap_fuzzer::{replay_edge_coverage, Budget};
use bigmap_target::{BenchmarkSpec, Interpreter};

fn main() {
    let effort = Effort::from_args();
    report_header(
        "Table II — Benchmark characteristics (paper vs generated substitute)",
        effort,
        "discovered edges measured by corpus replay after a short campaign",
    );

    let mut table = TextTable::new(vec![
        "benchmark",
        "version",
        "seeds(paper)",
        "disc.edges(paper)",
        "static(paper)",
        "static(gen)",
        "disc.edges(gen)",
        "collision%@64k(gen)",
    ]);

    for spec in BenchmarkSpec::table_ii() {
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, effort);
        let (_, corpus) = prepared.run_campaign_with_corpus(
            MapScheme::TwoLevel,
            MetricKind::Edge,
            Budget::Time(effort.arm_budget()),
            7,
        );
        let interp = Interpreter::new(&prepared.program);
        let discovered = replay_edge_coverage(&interp, &corpus);
        table.row(vec![
            spec.name.into(),
            spec.version.into(),
            fmt_count(spec.seeds),
            fmt_count(spec.discovered_edges),
            fmt_count(spec.static_edges),
            fmt_count(prepared.program.static_edge_count()),
            fmt_count(discovered),
            format!("{:.2}", 100.0 * collision_rate(1 << 16, discovered as u64)),
        ]);
    }
    println!("{table}");
    println!(
        "note: generated numbers are at scale {}; the paper column is the \
         published Table II.",
        effort.scale()
    );
}
