//! Map-op microbenchmark harness: per-kernel throughput for the whole-map
//! operations (§IV-E), region sizes 64 KiB → 16 MiB.
//!
//! Sweeps every kernel the host supports (`scalar`, `sse2`, `avx2`) over
//! {classify, compare, fused classify+compare} at each region size, plus a
//! reset-strategy sweep ({cached `fill(0)`, non-temporal streaming stores})
//! that locates the crossover justifying the `BIGMAP_NT_THRESHOLD` default,
//! plus a coverage-density sweep ({sparse journal walk, dense kernel,
//! adaptive dispatch} × {clustered, uniform} slot layouts) that locates the
//! sparse/dense crossover behind `DENSITY_CROSSOVER_DIVISOR`, plus a
//! giant-map arm (64 MiB → 1 GiB × {dense, sparse, adaptive} ×
//! {thp, explicit, off} huge-page policies) with a uniform-layout crossover
//! re-measurement behind `GIANT_RUN_CROSSOVER_DIVISOR` and a locality
//! cross-check against the `bigmap-cache` simulator.
//! Results print as a table and land in `BENCH_mapops.json`.
//!
//! Usage:
//!
//! ```text
//! bench_mapops [--quick | --full] [--giant] [--out <path>]
//! ```
//!
//! * `--quick` — 64 KiB → 1 MiB, small iteration budget (CI smoke);
//!   the giant arm shrinks to its 64 MiB row.
//! * default  — 64 KiB → 16 MiB, giant arm 64 MiB → 1 GiB.
//! * `--full` — same sizes, ~4× the iteration budget.
//! * `--giant` — run only the giant-map arm (CI smoke pairs this with
//!   `--quick` for a scaled-down 64 MiB pass).
//! * `--out <path>` — JSON destination (default `BENCH_mapops.json`).
//!
//! Benchmarked buffers mirror campaign reality: huge-page-aligned
//! [`MapBuffer`]s, ~2% nonzero coverage density, counts pre-classified to
//! their bucket fixed points and virgin maps pre-trained so every timed
//! iteration does identical steady-state work (classification is not
//! idempotent on raw counts; it is on {0, 1, 2, 64, 128}).

use std::fmt::Write as _;
use std::time::Instant;

use bigmap_bench::{report_header, Effort};
use bigmap_cache::{trace_bigmap, trace_flat, TraceWorkload, TracedOp};
use bigmap_core::alloc::{with_huge_policy, HugePolicy, MapBuffer};
use bigmap_core::classify::classify_slice;
use bigmap_core::journal::{runs_from_slots, SlotRun};
use bigmap_core::kernels::{active, available, table_for, KernelKind};
use bigmap_core::simd::{nt_threshold, stream_zero};
use bigmap_core::sparse::{classify_and_compare_runs, select_path, OpPath, SparseMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KIB: usize = 1024;
const MIB: usize = 1024 * KIB;

/// One measured configuration.
struct Sample {
    op: &'static str,
    /// Kernel label, or the reset strategy name for the reset sweep.
    variant: String,
    size: usize,
    iters: u64,
    ns_per_op: f64,
    gib_per_s: f64,
}

/// One measured cell of the coverage-density sweep.
struct DensitySample {
    density: f64,
    /// `clustered` (runs of 64 consecutive slots) or `uniform` scatter.
    layout: &'static str,
    /// `dense` (widest kernel), `sparse` (journal walk), or `adaptive`.
    variant: &'static str,
    touched: usize,
    iters: u64,
    ns_per_op: f64,
}

/// One measured cell of the giant-map arm.
struct GiantSample {
    size: usize,
    /// Requested huge-page policy (`thp`, `explicit`, `off`).
    policy: &'static str,
    /// Backend that actually served the timed buffers.
    served: &'static str,
    /// Whether an explicit request degraded to the THP path.
    fell_back: bool,
    /// `dense`, `sparse`, or `adaptive`.
    variant: &'static str,
    touched: usize,
    iters: u64,
    ns_per_op: f64,
}

/// One simulator-vs-measurement row of the giant-arm locality cross-check.
struct CacheCheck {
    size: usize,
    /// Predicted whole-map scan accesses/exec for the flat structure.
    flat_scan_apc: f64,
    /// Predicted scan accesses/exec for BigMap's condensed prefix.
    bigmap_scan_apc: f64,
    /// `flat_scan_apc / bigmap_scan_apc` — the model's sparse advantage.
    predicted_ratio: f64,
    /// Fraction of flat-scan fetched bytes holding no active data.
    flat_dead: f64,
    /// Measured dense fused ns/op (THP arm).
    measured_dense_ns: f64,
    /// Measured sparse fused ns/op (THP arm).
    measured_sparse_ns: f64,
    /// `measured_dense_ns / measured_sparse_ns`.
    measured_ratio: f64,
    /// Model and measurement agree on which structure wins.
    agree: bool,
}

/// Everything the giant arm produces, for JSON rendering.
struct GiantArm {
    touched: usize,
    samples: Vec<GiantSample>,
    /// Measured uniform-layout crossover divisor per giant size.
    divisors: Vec<(usize, f64)>,
    checks: Vec<CacheCheck>,
}

fn main() {
    let effort = Effort::from_args();
    let giant_only = std::env::args().any(|a| a == "--giant");
    let out_path = out_path_from_args();
    report_header(
        "bench_mapops — per-kernel whole-map operation throughput",
        effort,
        "steady-state ns/op over huge-page-aligned maps, ~2% coverage density",
    );

    let sizes: &[usize] = match effort {
        Effort::Quick => &[64 * KIB, 256 * KIB, MIB],
        Effort::Standard | Effort::Full => &[64 * KIB, 256 * KIB, MIB, 4 * MIB, 16 * MIB],
    };
    // Total bytes each (op, kernel, size) cell should chew through; sets
    // the iteration count so small and large regions get comparable
    // measurement time.
    let target_bytes: usize = match effort {
        Effort::Quick => 64 * MIB,
        Effort::Standard => 512 * MIB,
        Effort::Full => 2048 * MIB,
    };

    let kernels = available();
    println!(
        "kernels available: {}",
        kernels
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("nt_threshold: {} bytes\n", nt_threshold());

    let mut samples: Vec<Sample> = Vec::new();
    let mut density_samples: Vec<DensitySample> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut crossover: Option<f64> = None;
    let mut speedup_2pct = 0.0;
    let mut adaptive_overhead = 0.0;
    let dense_table = active();

    if !giant_only {
        // --- kernel ops: classify / compare / fused, per kernel, per size ---
        println!(
            "{:<10} {:<8} {:>9} {:>12} {:>10}",
            "op", "kernel", "size", "ns/op", "GiB/s"
        );
        for &size in sizes {
            let (cur, virgin) = prepare_region(size);
            for &kind in &kernels {
                let table = table_for(kind).expect("available kernel has a table");
                for op in ["classify", "compare", "fused"] {
                    let iters = (target_bytes / size).clamp(5, 4096) as u64;
                    let mut cur_buf = clone_map(&cur);
                    let mut virgin_buf = clone_map(&virgin);
                    let cur_s = cur_buf.as_mut_slice();
                    let virgin_s = virgin_buf.as_mut_slice();
                    // Warmup: fault pages in and settle the branch predictors.
                    run_op(op, table, cur_s, virgin_s);
                    run_op(op, table, cur_s, virgin_s);
                    let t = Instant::now();
                    for _ in 0..iters {
                        run_op(op, table, cur_s, virgin_s);
                    }
                    let elapsed = t.elapsed();
                    let sample = Sample {
                        op,
                        variant: kind.label().to_string(),
                        size,
                        iters,
                        ns_per_op: elapsed.as_nanos() as f64 / iters as f64,
                        gib_per_s: (size as u64 * iters) as f64
                            / elapsed.as_secs_f64().max(1e-12)
                            / (1u64 << 30) as f64,
                    };
                    println!(
                        "{:<10} {:<8} {:>9} {:>12.0} {:>10.2}",
                        sample.op,
                        sample.variant,
                        size_label(size),
                        sample.ns_per_op,
                        sample.gib_per_s
                    );
                    samples.push(sample);
                }
            }
        }

        // --- reset sweep: cached fill vs streaming stores around the NT
        //     threshold (the satellite that pins BIGMAP_NT_THRESHOLD) ---
        println!("\nreset sweep (fill vs non-temporal stream):");
        println!(
            "{:<10} {:<8} {:>9} {:>12} {:>10}",
            "op", "strategy", "size", "ns/op", "GiB/s"
        );
        let reset_sizes = [64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
        for size in reset_sizes {
            for strategy in ["fill", "stream"] {
                let iters = (target_bytes / size).clamp(8, 8192) as u64;
                let mut buf = MapBuffer::<u8>::zeroed(size);
                let slice = buf.as_mut_slice();
                run_reset(strategy, slice);
                run_reset(strategy, slice);
                let t = Instant::now();
                for _ in 0..iters {
                    run_reset(strategy, slice);
                }
                let elapsed = t.elapsed();
                let sample = Sample {
                    op: "reset",
                    variant: strategy.to_string(),
                    size,
                    iters,
                    ns_per_op: elapsed.as_nanos() as f64 / iters as f64,
                    gib_per_s: (size as u64 * iters) as f64
                        / elapsed.as_secs_f64().max(1e-12)
                        / (1u64 << 30) as f64,
                };
                println!(
                    "{:<10} {:<8} {:>9} {:>12.0} {:>10.2}",
                    sample.op,
                    sample.variant,
                    size_label(size),
                    sample.ns_per_op,
                    sample.gib_per_s
                );
                samples.push(sample);
            }
        }

        // --- headline: AVX2 fused vs scalar split-equivalent speedup ---
        println!("\nAVX2 fused speedup over scalar fused:");
        for &size in sizes {
            let scalar = find_ns(&samples, "fused", "scalar", size);
            let avx2 = find_ns(&samples, "fused", "avx2", size);
            if let (Some(s), Some(a)) = (scalar, avx2) {
                let speedup = s / a;
                println!("  {:>9}: {speedup:.2}x", size_label(size));
                speedups.push((size, speedup));
            }
        }
        let big_ok = speedups
            .iter()
            .filter(|(size, _)| *size >= MIB)
            .all(|&(_, s)| s >= 2.0);
        if speedups.iter().any(|(size, _)| *size >= MIB) {
            println!(
                "  acceptance (>= 2x on 1 MiB+): {}",
                if big_ok { "PASS" } else { "FAIL" }
            );
        }

        // --- density sweep: journal-driven sparse ops vs the dense kernel vs
        //     the adaptive dispatcher (the satellite that pins
        //     DENSITY_CROSSOVER_DIVISOR), fused op on a 1 MiB used prefix ---
        println!("\ndensity sweep (fused, 1 MiB used prefix):");
        println!(
            "{:<9} {:<10} {:<9} {:>9} {:>9} {:>12}",
            "density", "layout", "variant", "touched", "iters", "ns/op"
        );
        let densities: &[f64] = match effort {
            Effort::Quick => &[0.002, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
            Effort::Standard | Effort::Full => {
                &[0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
            }
        };
        let sweep_size = MIB;
        for &density in densities {
            for layout in ["clustered", "uniform"] {
                let (cur, virgin, slots) =
                    prepare_density_region(sweep_size, density, layout == "clustered");
                // The journal coalesces consecutive touches as they happen; the
                // bench reproduces its encoding offline, outside the timed loop.
                let runs = runs_from_slots(&slots);
                for variant in ["dense", "sparse", "adaptive"] {
                    // Scale iterations by the bytes each variant actually
                    // touches, so the very fast low-density sparse cells still
                    // accumulate measurable wall time.
                    let eff_bytes = match variant {
                        "dense" => sweep_size,
                        "sparse" => slots.len().max(1),
                        _ => match select_path(
                            SparseMode::Auto,
                            true,
                            slots.len(),
                            runs.len(),
                            sweep_size,
                        ) {
                            OpPath::Sparse => slots.len().max(1),
                            OpPath::Dense => sweep_size,
                        },
                    };
                    let iters = (target_bytes / eff_bytes).clamp(8, 1 << 17) as u64;
                    let mut cur_buf = clone_map(&cur);
                    let mut virgin_buf = clone_map(&virgin);
                    let cur_s = cur_buf.as_mut_slice();
                    let virgin_s = virgin_buf.as_mut_slice();
                    run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    let t = Instant::now();
                    for _ in 0..iters {
                        run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    }
                    let elapsed = t.elapsed();
                    let sample = DensitySample {
                        density,
                        layout,
                        variant,
                        touched: slots.len(),
                        iters,
                        ns_per_op: elapsed.as_nanos() as f64 / iters as f64,
                    };
                    println!(
                        "{:<9} {:<10} {:<9} {:>9} {:>9} {:>12.0}",
                        format!("{:.1}%", density * 100.0),
                        sample.layout,
                        sample.variant,
                        sample.touched,
                        sample.iters,
                        sample.ns_per_op
                    );
                    density_samples.push(sample);
                }
            }
        }

        // Crossover: where the sparse walk stops beating the dense kernel,
        // taken from the conservative uniform layout (clustered coverage keeps
        // sparse cheaper for longer) and linearly interpolated between the last
        // winning and first losing grid densities.
        let mut prev: Option<(f64, f64, f64)> = None;
        for &d in densities {
            if let (Some(sp), Some(de)) = (
                find_density_ns(&density_samples, d, "uniform", "sparse"),
                find_density_ns(&density_samples, d, "uniform", "dense"),
            ) {
                if sp >= de {
                    crossover = Some(match prev {
                        // Zero crossing of (sparse - dense) between the grid
                        // points straddling the break-even.
                        Some((pd, psp, pde)) => {
                            let f0 = psp - pde;
                            let f1 = sp - de;
                            pd + (d - pd) * (-f0) / (f1 - f0).max(1e-9)
                        }
                        None => d,
                    });
                    break;
                }
                prev = Some((d, sp, de));
            }
        }
        match crossover {
            Some(d) => println!(
                "\nsparse/dense crossover (uniform layout, interpolated): \
             ~{:.1}% density (divisor ~= {:.0}; configured run divisor {})",
                d * 100.0,
                1.0 / d,
                bigmap_core::sparse::RUN_CROSSOVER_DIVISOR
            ),
            None => println!("\nsparse/dense crossover: not reached in sweep range"),
        }

        speedup_2pct = match (
            find_density_ns(&density_samples, 0.02, "clustered", "dense"),
            find_density_ns(&density_samples, 0.02, "clustered", "sparse"),
        ) {
            (Some(de), Some(sp)) => de / sp,
            _ => 0.0,
        };
        println!(
            "sparse speedup at 2% density (clustered): {speedup_2pct:.2}x \
         — acceptance (>= 5x): {}",
            if speedup_2pct >= 5.0 { "PASS" } else { "FAIL" }
        );

        adaptive_overhead = ["clustered", "uniform"]
            .iter()
            .filter_map(|layout| {
                let ad = find_density_ns(&density_samples, 0.5, layout, "adaptive")?;
                let de = find_density_ns(&density_samples, 0.5, layout, "dense")?;
                Some(ad / de - 1.0)
            })
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "adaptive vs dense at 50% density: {:+.1}% — acceptance (<= 3%): {}",
            adaptive_overhead * 100.0,
            if adaptive_overhead <= 0.03 {
                "PASS"
            } else {
                "FAIL"
            }
        );
    } // if !giant_only

    let giant = run_giant_arm(effort, dense_table);

    let json = render_json(
        effort,
        &kernels,
        &samples,
        &speedups,
        &density_samples,
        crossover,
        speedup_2pct,
        adaptive_overhead,
        &giant,
    );
    std::fs::write(&out_path, json).expect("write BENCH_mapops.json");
    println!("\nwrote {out_path}");
}

/// The giant-map arm: fused map ops at 64 MiB → 1 GiB under each
/// huge-page policy, a uniform-layout crossover re-measurement at the
/// giant sizes, and the cache-simulator locality cross-check.
///
/// The active set is held at the paper-realistic count (~2% of the
/// largest evaluated 64 MiB map) across every size: growing the map
/// spreads a program's fixed edge population thinner, it does not invent
/// new edges. Dense cost therefore scales with the map while sparse cost
/// tracks the touched set, and the huge-page backends shift the dense
/// slope — exactly the regime the size-aware policy has to navigate.
fn run_giant_arm(effort: Effort, dense_table: &bigmap_core::KernelTable) -> GiantArm {
    let giant_sizes: &[usize] = match effort {
        Effort::Quick => &[64 * MIB],
        Effort::Standard | Effort::Full => &[64 * MIB, 256 * MIB, 1024 * MIB],
    };
    let giant_target: usize = match effort {
        Effort::Quick => 512 * MIB,
        Effort::Standard => 4096 * MIB,
        Effort::Full => 16384 * MIB,
    };
    // ~2% of 64 MiB, in whole 64-slot clusters.
    let giant_touched = (64 * MIB / 50) / 64 * 64;
    let policies: [(&'static str, HugePolicy); 3] = [
        ("thp", HugePolicy::Thp),
        ("explicit", HugePolicy::Explicit),
        ("off", HugePolicy::Off),
    ];

    println!("\ngiant arm (fused, constant {giant_touched}-slot active set):");
    println!(
        "{:<9} {:<9} {:<12} {:<9} {:>7} {:>14}",
        "size", "policy", "served", "variant", "iters", "ns/op"
    );
    let mut giant_samples: Vec<GiantSample> = Vec::new();
    for &size in giant_sizes {
        let density = giant_touched as f64 / size as f64;
        let (cur, virgin, slots) = prepare_density_region(size, density, true);
        let runs = runs_from_slots(&slots);
        for (pname, policy) in policies {
            for variant in ["dense", "sparse", "adaptive"] {
                let eff_bytes = match variant {
                    "dense" => size,
                    "sparse" => slots.len().max(1),
                    _ => match select_path(SparseMode::Auto, true, slots.len(), runs.len(), size) {
                        OpPath::Sparse => slots.len().max(1),
                        OpPath::Dense => size,
                    },
                };
                let iters = (giant_target / eff_bytes).clamp(3, 4096) as u64;
                // The timed buffers are allocated under the policy being
                // measured; the prepared source pair stays on the ambient
                // (thp) policy and only feeds the copies.
                let sample = with_huge_policy(policy, || {
                    let mut cur_buf = clone_map(&cur);
                    let mut virgin_buf = clone_map(&virgin);
                    let served = cur_buf.backend().label();
                    let fell_back = cur_buf.fell_back();
                    let cur_s = cur_buf.as_mut_slice();
                    let virgin_s = virgin_buf.as_mut_slice();
                    run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    let t = Instant::now();
                    for _ in 0..iters {
                        run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                    }
                    let elapsed = t.elapsed();
                    GiantSample {
                        size,
                        policy: pname,
                        served,
                        fell_back,
                        variant,
                        touched: slots.len(),
                        iters,
                        ns_per_op: elapsed.as_nanos() as f64 / iters as f64,
                    }
                });
                println!(
                    "{:<9} {:<9} {:<12} {:<9} {:>7} {:>14.0}",
                    size_label(size),
                    sample.policy,
                    format!(
                        "{}{}",
                        sample.served,
                        if sample.fell_back { "(fb)" } else { "" }
                    ),
                    sample.variant,
                    sample.iters,
                    sample.ns_per_op
                );
                giant_samples.push(sample);
            }
        }
    }

    // Acceptance: adaptive per-exec cost at the giant sizes vs 64 MiB,
    // per allocation policy — on hosts where THP never actually collapses
    // (AnonHugePages stays 0) the thp arm is plain pages in disguise, so
    // the explicit arm is the honest huge-page data point.
    for policy in ["thp", "explicit", "off"] {
        if let Some(base) = find_giant_ns(&giant_samples, 64 * MIB, policy, "adaptive") {
            for &size in giant_sizes.iter().filter(|&&s| s > 64 * MIB) {
                if let Some(g) = find_giant_ns(&giant_samples, size, policy, "adaptive") {
                    let ratio = g / base;
                    println!(
                        "  adaptive {} vs 64M per-exec cost [{policy}]: {ratio:.2}x — acceptance (<= 2x): {}",
                        size_label(size),
                        if ratio <= 2.0 { "PASS" } else { "FAIL" }
                    );
                }
            }
        }
    }
    // Headline: explicit huge pages vs forced-plain pages on the dense arm.
    for &size in giant_sizes {
        if let (Some(e), Some(o)) = (
            find_giant_ns(&giant_samples, size, "explicit", "dense"),
            find_giant_ns(&giant_samples, size, "off", "dense"),
        ) {
            println!(
                "  dense arm at {}: explicit {e:.0} ns vs off {o:.0} ns — {:.2}x",
                size_label(size),
                o / e
            );
        }
    }

    // Uniform-layout crossover re-measurement at the giant sizes (the
    // number behind GIANT_RUN_CROSSOVER_DIVISOR). Quick mode skips it —
    // the per-byte region preparation dominates CI time.
    let cross_sizes: &[usize] = match effort {
        Effort::Quick => &[],
        Effort::Standard | Effort::Full => &[256 * MIB, 1024 * MIB],
    };
    let mut divisors: Vec<(usize, f64)> = Vec::new();
    if !cross_sizes.is_empty() {
        println!("\ngiant sparse/dense crossover (uniform singleton runs):");
    }
    for &size in cross_sizes {
        // Densities bracketing the expected break-even (divisor 32–128).
        let densities = [1.0 / 128.0, 1.0 / 96.0, 1.0 / 64.0, 1.0 / 48.0, 1.0 / 32.0];
        let mut prev: Option<(f64, f64, f64)> = None;
        let mut cross: Option<f64> = None;
        for &d in &densities {
            let (cur, virgin, slots) = prepare_density_region(size, d, false);
            let runs = runs_from_slots(&slots);
            let cell = |variant: &'static str| -> f64 {
                let eff = if variant == "dense" {
                    size
                } else {
                    slots.len().max(1)
                };
                let iters = (giant_target / eff).clamp(3, 1024) as u64;
                let mut cur_buf = clone_map(&cur);
                let mut virgin_buf = clone_map(&virgin);
                let cur_s = cur_buf.as_mut_slice();
                let virgin_s = virgin_buf.as_mut_slice();
                run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                let t = Instant::now();
                for _ in 0..iters {
                    run_density_op(variant, dense_table, cur_s, virgin_s, &runs, slots.len());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            };
            let de = cell("dense");
            let sp = cell("sparse");
            println!(
                "  {:>9} 1/{:<4.0} sparse {sp:>13.0} ns  dense {de:>13.0} ns  {}",
                size_label(size),
                1.0 / d,
                if sp < de { "sparse wins" } else { "dense wins" }
            );
            if sp >= de {
                cross = Some(match prev {
                    Some((pd, psp, pde)) => {
                        let f0 = psp - pde;
                        let f1 = sp - de;
                        pd + (d - pd) * (-f0) / (f1 - f0).max(1e-9)
                    }
                    None => d,
                });
                break;
            }
            prev = Some((d, sp, de));
        }
        match cross {
            Some(d) => {
                let divisor = 1.0 / d;
                println!(
                    "  {} crossover ~1/{divisor:.0} (divisor ~= {divisor:.0}; configured giant divisor {})",
                    size_label(size),
                    bigmap_core::sparse::GIANT_RUN_CROSSOVER_DIVISOR
                );
                divisors.push((size, divisor));
            }
            None => println!(
                "  {} crossover: not reached in sweep range",
                size_label(size)
            ),
        }
    }

    // Cache-simulator cross-check: the locality model predicts the scan
    // cost ratio between the flat structure (whole-map walk) and BigMap's
    // condensed prefix; the measured dense/sparse fused ratio on the THP
    // arm is the silicon-side number it must agree with on direction.
    println!("\ncache-simulator locality cross-check (scan accesses/exec):");
    println!(
        "{:<9} {:>14} {:>14} {:>10} {:>10} {:>10} {:>7}",
        "size", "flat", "bigmap", "pred", "measured", "flat-dead", "agree"
    );
    let mut checks: Vec<CacheCheck> = Vec::new();
    for &size in giant_sizes {
        let workload = TraceWorkload {
            map_size: size,
            active_keys: giant_touched,
            events_per_exec: 8_000,
            // The whole-map scan dominates simulation cost at giant sizes;
            // one execution is enough for the (cold, cache-busting) ratio.
            executions: if size >= 512 * MIB { 1 } else { 2 },
            seed: 0xB16_3A9,
        };
        let flat = trace_flat(&workload);
        let big = trace_bigmap(&workload);
        let scan_apc = |rows: &[bigmap_cache::TraceRow]| -> f64 {
            rows.iter()
                .filter(|r| r.op == TracedOp::Others)
                .map(|r| r.accesses_per_exec)
                .sum()
        };
        let flat_scan_apc = scan_apc(&flat);
        let bigmap_scan_apc = scan_apc(&big);
        let flat_dead = flat
            .iter()
            .find(|r| r.op == TracedOp::Others)
            .map_or(0.0, |r| r.dead_byte_fraction);
        let predicted_ratio = flat_scan_apc / bigmap_scan_apc.max(1.0);
        let measured_dense_ns = find_giant_ns(&giant_samples, size, "thp", "dense").unwrap_or(0.0);
        let measured_sparse_ns =
            find_giant_ns(&giant_samples, size, "thp", "sparse").unwrap_or(0.0);
        let measured_ratio = if measured_sparse_ns > 0.0 {
            measured_dense_ns / measured_sparse_ns
        } else {
            0.0
        };
        let agree = (predicted_ratio > 1.0) == (measured_ratio > 1.0);
        println!(
            "{:<9} {:>14.0} {:>14.0} {:>9.1}x {:>9.1}x {:>9.1}% {:>7}",
            size_label(size),
            flat_scan_apc,
            bigmap_scan_apc,
            predicted_ratio,
            measured_ratio,
            flat_dead * 100.0,
            if agree { "yes" } else { "NO" }
        );
        checks.push(CacheCheck {
            size,
            flat_scan_apc,
            bigmap_scan_apc,
            predicted_ratio,
            flat_dead,
            measured_dense_ns,
            measured_sparse_ns,
            measured_ratio,
            agree,
        });
    }

    GiantArm {
        touched: giant_touched,
        samples: giant_samples,
        divisors,
        checks,
    }
}

fn find_giant_ns(samples: &[GiantSample], size: usize, policy: &str, variant: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.size == size && s.policy == policy && s.variant == variant)
        .map(|s| s.ns_per_op)
}

/// Parses `--out <path>` / `--out=<path>`; defaults to `BENCH_mapops.json`.
fn out_path_from_args() -> String {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--out=") {
            return path.to_string();
        }
        if arg == "--out" {
            if let Some(path) = args.get(i + 1) {
                return path.clone();
            }
        }
    }
    "BENCH_mapops.json".to_string()
}

/// Builds a steady-state (cur, virgin) pair for one region size: ~2%
/// nonzero density, counts at bucket fixed points, virgin trained on cur
/// so timed compares take the no-new-coverage path and leave virgin
/// unchanged.
fn prepare_region(size: usize) -> (MapBuffer<u8>, MapBuffer<u8>) {
    let mut rng = SmallRng::seed_from_u64(0xB16_3A9 ^ size as u64);
    let mut cur = MapBuffer::<u8>::zeroed(size);
    {
        let slice = cur.as_mut_slice();
        for byte in slice.iter_mut() {
            if rng.gen_bool(0.02) {
                *byte = rng.gen_range(1u8..=255);
            }
        }
        // Fixed point: classifying classified data twice is a no-op
        // (buckets land on {0, 1, 2, 64, 128} after two passes), so every
        // timed classify iteration does identical work.
        classify_slice(slice);
        classify_slice(slice);
    }
    let mut virgin = MapBuffer::<u8>::filled(size, 0xFF);
    let _ = bigmap_core::diff::compare_region(cur.as_slice(), virgin.as_mut_slice());
    (cur, virgin)
}

/// Builds a steady-state (cur, virgin, journal slots) triple at the given
/// nonzero density for the density sweep.
///
/// `clustered` places coverage as runs of 64 consecutive condensed slots in
/// shuffled run order — condensation assigns slots in discovery order, so
/// edges exercised together land adjacently, which is what real campaigns
/// produce. The uniform layout scatters single bytes and is the worst case
/// for the journal walk (every touch is a fresh cache line), so the
/// crossover is taken from it.
fn prepare_density_region(
    size: usize,
    density: f64,
    clustered: bool,
) -> (MapBuffer<u8>, MapBuffer<u8>, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(
        0xD3_7517 ^ size as u64 ^ ((density * 1e6) as u64) ^ ((clustered as u64) << 40),
    );
    let mut cur = MapBuffer::<u8>::zeroed(size);
    let mut slots: Vec<u32> = Vec::new();
    {
        let slice = cur.as_mut_slice();
        if clustered {
            const RUN: usize = 64;
            let n_blocks = size / RUN;
            let want = (((size as f64 * density) as usize) / RUN).clamp(1, n_blocks);
            // Fisher–Yates prefix: `want` distinct blocks in random order,
            // mimicking the journal's first-touch ordering across runs.
            let mut blocks: Vec<u32> = (0..n_blocks as u32).collect();
            for i in 0..want {
                let j = rng.gen_range(i..n_blocks);
                blocks.swap(i, j);
                let base = blocks[i] as usize * RUN;
                for (s, byte) in slice.iter_mut().enumerate().skip(base).take(RUN) {
                    *byte = rng.gen_range(1u8..=255);
                    slots.push(s as u32);
                }
            }
        } else {
            for (i, byte) in slice.iter_mut().enumerate() {
                if rng.gen_bool(density) {
                    *byte = rng.gen_range(1u8..=255);
                    slots.push(i as u32);
                }
            }
        }
        // Same fixed-point trick as `prepare_region`.
        classify_slice(slice);
        classify_slice(slice);
    }
    let mut virgin = MapBuffer::<u8>::filled(size, 0xFF);
    let _ = bigmap_core::diff::compare_region(cur.as_slice(), virgin.as_mut_slice());
    (cur, virgin, slots)
}

#[inline]
fn run_density_op(
    variant: &str,
    table: &bigmap_core::KernelTable,
    cur: &mut [u8],
    virgin: &mut [u8],
    runs: &[SlotRun],
    touched: usize,
) {
    match variant {
        "dense" => {
            let _ = table.classify_and_compare(cur, virgin);
        }
        "sparse" => {
            let _ = classify_and_compare_runs(cur, virgin, runs, table);
        }
        // The adaptive cell pays the real per-exec dispatch cost: a
        // `select_path` call in front of whichever path it picks.
        "adaptive" => match select_path(SparseMode::Auto, true, touched, runs.len(), cur.len()) {
            OpPath::Sparse => {
                let _ = classify_and_compare_runs(cur, virgin, runs, table);
            }
            OpPath::Dense => {
                let _ = table.classify_and_compare(cur, virgin);
            }
        },
        _ => unreachable!("unknown density variant {variant}"),
    }
}

fn find_density_ns(
    samples: &[DensitySample],
    density: f64,
    layout: &str,
    variant: &str,
) -> Option<f64> {
    samples
        .iter()
        .find(|s| (s.density - density).abs() < 1e-9 && s.layout == layout && s.variant == variant)
        .map(|s| s.ns_per_op)
}

fn clone_map(src: &MapBuffer<u8>) -> MapBuffer<u8> {
    let mut dst = MapBuffer::<u8>::zeroed(src.len());
    dst.as_mut_slice().copy_from_slice(src.as_slice());
    dst
}

#[inline]
fn run_op(op: &str, table: &bigmap_core::KernelTable, cur: &mut [u8], virgin: &mut [u8]) {
    match op {
        "classify" => table.classify(cur),
        "compare" => {
            let _ = table.compare(cur, virgin);
        }
        "fused" => {
            let _ = table.classify_and_compare(cur, virgin);
        }
        _ => unreachable!("unknown op {op}"),
    }
}

#[inline]
fn run_reset(strategy: &str, buf: &mut [u8]) {
    match strategy {
        "fill" => buf.fill(0),
        "stream" => stream_zero(buf),
        _ => unreachable!("unknown reset strategy {strategy}"),
    }
}

fn find_ns(samples: &[Sample], op: &str, variant: &str, size: usize) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.op == op && s.variant == variant && s.size == size)
        .map(|s| s.ns_per_op)
}

fn size_label(size: usize) -> String {
    if size >= MIB {
        format!("{}M", size / MIB)
    } else {
        format!("{}K", size / KIB)
    }
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    effort: Effort,
    kernels: &[KernelKind],
    samples: &[Sample],
    speedups: &[(usize, f64)],
    density_samples: &[DensitySample],
    crossover: Option<f64>,
    speedup_2pct: f64,
    adaptive_overhead: f64,
    giant: &GiantArm,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"bench_mapops\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", effort.label());
    let _ = writeln!(out, "  \"nt_threshold\": {},", nt_threshold());
    let kernel_list = kernels
        .iter()
        .map(|k| format!("\"{}\"", k.label()))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  \"kernels\": [{kernel_list}],");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"op\": \"{}\", \"variant\": \"{}\", \"size\": {}, \
             \"iters\": {}, \"ns_per_op\": {:.1}, \"gib_per_s\": {:.3}}}",
            s.op, s.variant, s.size, s.iters, s.ns_per_op, s.gib_per_s
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"density_results\": [\n");
    for (i, s) in density_samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"density\": {}, \"layout\": \"{}\", \"variant\": \"{}\", \
             \"touched\": {}, \"iters\": {}, \"ns_per_op\": {:.1}}}",
            s.density, s.layout, s.variant, s.touched, s.iters, s.ns_per_op
        );
        out.push_str(if i + 1 < density_samples.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    match crossover {
        Some(d) => {
            let _ = writeln!(out, "  \"sparse_crossover_density\": {d},");
        }
        None => {
            let _ = writeln!(out, "  \"sparse_crossover_density\": null,");
        }
    }
    let _ = writeln!(
        out,
        "  \"sparse_speedup_at_2pct_clustered\": {speedup_2pct:.2},"
    );
    let _ = writeln!(
        out,
        "  \"adaptive_overhead_at_50pct\": {adaptive_overhead:.4},"
    );
    let _ = writeln!(out, "  \"giant_touched\": {},", giant.touched);
    out.push_str("  \"giant_results\": [\n");
    for (i, s) in giant.samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"size\": {}, \"policy\": \"{}\", \"served\": \"{}\", \
             \"fell_back\": {}, \"variant\": \"{}\", \"touched\": {}, \
             \"iters\": {}, \"ns_per_op\": {:.1}}}",
            s.size, s.policy, s.served, s.fell_back, s.variant, s.touched, s.iters, s.ns_per_op
        );
        out.push_str(if i + 1 < giant.samples.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"giant_crossover_divisors\": {");
    let entries = giant
        .divisors
        .iter()
        .map(|(size, d)| format!("\"{size}\": {d:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&entries);
    out.push_str("},\n");
    let _ = writeln!(
        out,
        "  \"giant_configured_divisor\": {},",
        bigmap_core::sparse::GIANT_RUN_CROSSOVER_DIVISOR
    );
    out.push_str("  \"cache_crosscheck\": [\n");
    for (i, c) in giant.checks.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"size\": {}, \"flat_scan_accesses_per_exec\": {:.0}, \
             \"bigmap_scan_accesses_per_exec\": {:.0}, \
             \"predicted_scan_ratio\": {:.2}, \"flat_dead_byte_fraction\": {:.4}, \
             \"measured_dense_ns\": {:.1}, \"measured_sparse_ns\": {:.1}, \
             \"measured_dense_over_sparse\": {:.2}, \"agree\": {}}}",
            c.size,
            c.flat_scan_apc,
            c.bigmap_scan_apc,
            c.predicted_ratio,
            c.flat_dead,
            c.measured_dense_ns,
            c.measured_sparse_ns,
            c.measured_ratio,
            c.agree
        );
        out.push_str(if i + 1 < giant.checks.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"fused_avx2_speedup_vs_scalar\": {");
    let entries = speedups
        .iter()
        .map(|(size, s)| format!("\"{size}\": {s:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&entries);
    out.push_str("}\n}\n");
    out
}
