//! # bigmap-bench
//!
//! Shared plumbing for the per-figure/table harness binaries (`fig2_*` …
//! `table3_*`) and the Criterion micro-benchmarks. Each binary regenerates
//! one table or figure from the paper's evaluation; this library holds the
//! common CLI handling and campaign construction so the binaries stay
//! declarative.
//!
//! All harness binaries accept:
//!
//! * `--quick` — seconds-scale smoke run (small target scale, short
//!   budgets),
//! * `--full` — closer-to-paper scale (minutes to tens of minutes),
//! * neither — a balanced default.
//!
//! The campaign-shaped binaries (`fig6_*`, `fig9_*`, `table3_*`)
//! additionally accept the fault-tolerant runtime flags:
//!
//! * `--checkpoint <dir>` — periodically snapshot every arm's campaign
//!   state into a per-arm subdirectory of `<dir>`,
//! * `--checkpoint-every <n>` — checkpoint cadence in executions
//!   (default 2000),
//! * `--resume` — resume each arm from its checkpoint in `<dir>` if one
//!   exists (a killed run picks up where the last snapshot left off).
//!
//! Reports print the run's actual parameters in the header so measured
//! numbers in EXPERIMENTS.md are always traceable.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::{Instrumentation, MetricKind};
use bigmap_fuzzer::{
    Budget, Campaign, CampaignConfig, CampaignStats, CheckpointManager, Telemetry,
    TelemetryRegistry,
};
use bigmap_target::{BenchmarkSpec, Interpreter, Program};

/// Harness effort level, from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Smoke run: tiny targets, sub-second arms.
    Quick,
    /// Balanced default.
    Standard,
    /// Closer-to-paper scale.
    Full,
}

impl Effort {
    /// Parses `--quick` / `--full` from the process arguments.
    pub fn from_args() -> Effort {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Effort::Quick
        } else if args.iter().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Standard
        }
    }

    /// Target scale factor relative to the paper's benchmark sizes.
    pub fn scale(self) -> f64 {
        match self {
            Effort::Quick => 0.01,
            Effort::Standard => 0.05,
            Effort::Full => 0.25,
        }
    }

    /// Per-arm wall-clock budget for throughput experiments.
    pub fn arm_budget(self) -> Duration {
        match self {
            Effort::Quick => Duration::from_millis(250),
            Effort::Standard => Duration::from_millis(1500),
            Effort::Full => Duration::from_secs(8),
        }
    }

    /// Per-arm wall-clock budget for the crash experiments: crashes are
    /// sparse (the paper ran 24 hours), so these arms run 8x longer than
    /// the throughput arms.
    pub fn crash_arm_budget(self) -> Duration {
        self.arm_budget() * 8
    }

    /// Target scale for the crash experiments (Figures 8, 10, Table III).
    /// Kept at the base scale: LLVM-scale targets cost ~1 ms/exec like
    /// the real binaries, and seconds-scale arms need the smaller
    /// programs' exec rates for crash ladders to fire at all.
    pub fn crash_scale(self) -> f64 {
        self.scale()
    }

    /// Seed-corpus cap.
    pub fn max_seeds(self) -> usize {
        match self {
            Effort::Quick => 8,
            Effort::Standard => 32,
            Effort::Full => 128,
        }
    }

    /// Label for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }
}

/// Parses `--telemetry <path>` (or `--telemetry=<path>`) from the process
/// arguments: the JSONL file the harness should stream telemetry
/// snapshots into. `None` when the flag is absent — telemetry stays off.
pub fn telemetry_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--telemetry=") {
            return Some(PathBuf::from(path));
        }
        if arg == "--telemetry" {
            return args.get(i + 1).map(PathBuf::from);
        }
    }
    None
}

/// Checkpoint/resume settings for the campaign-shaped harness binaries,
/// parsed from `--checkpoint <dir>`, `--checkpoint-every <n>` and
/// `--resume`.
#[derive(Debug, Clone)]
pub struct CheckpointArgs {
    /// Root directory holding one checkpoint subdirectory per arm.
    pub dir: PathBuf,
    /// Resume arms from their existing checkpoints instead of starting
    /// clean.
    pub resume: bool,
    /// Checkpoint cadence in executions.
    pub every: u64,
}

impl CheckpointArgs {
    /// Wall-clock floor between snapshots. The exec-count cadence alone
    /// would let a fast arm (hundreds of thousands of execs/sec in quick
    /// mode) checkpoint hundreds of times per second; the floor bounds
    /// the write rate so checkpointing stays inside its <2% overhead
    /// budget regardless of the arm's exec rate (see EXPERIMENTS.md).
    pub const MIN_INTERVAL: Duration = Duration::from_millis(250);

    /// Parses the checkpoint flags from the process arguments. `None`
    /// when `--checkpoint` is absent — checkpointing stays off and the
    /// arms run exactly as before.
    pub fn from_args() -> Option<CheckpointArgs> {
        let args: Vec<String> = std::env::args().collect();
        let mut dir = None;
        let mut every = 2_000u64;
        for (i, arg) in args.iter().enumerate() {
            if let Some(path) = arg.strip_prefix("--checkpoint=") {
                dir = Some(PathBuf::from(path));
            } else if arg == "--checkpoint" {
                dir = args.get(i + 1).map(PathBuf::from);
            } else if let Some(n) = arg.strip_prefix("--checkpoint-every=") {
                every = n.parse().expect("--checkpoint-every expects an integer");
            } else if arg == "--checkpoint-every" {
                if let Some(n) = args.get(i + 1) {
                    every = n.parse().expect("--checkpoint-every expects an integer");
                }
            }
        }
        Some(CheckpointArgs {
            dir: dir?,
            resume: args.iter().any(|a| a == "--resume"),
            every,
        })
    }

    /// The checkpoint directory for one named arm. Without `--resume`
    /// any stale checkpoint state under the key is removed first, so a
    /// fresh run never silently continues an older campaign.
    pub fn prepare_arm(&self, key: &str) -> PathBuf {
        let arm_dir = self.dir.join(key);
        if !self.resume {
            let _ = std::fs::remove_dir_all(&arm_dir);
        }
        arm_dir
    }
}

/// A benchmark prepared for campaigns at one map size: program +
/// instrumentation + seeds.
pub struct PreparedBenchmark {
    /// The benchmark spec (paper characteristics).
    pub spec: BenchmarkSpec,
    /// The generated program.
    pub program: Program,
    /// ID tables for the requested map size.
    pub instrumentation: Instrumentation,
    /// Seed corpus.
    pub seeds: Vec<Vec<u8>>,
}

impl PreparedBenchmark {
    /// Builds (generates + "compiles" + seeds) a benchmark.
    pub fn build(spec: &BenchmarkSpec, map_size: MapSize, effort: Effort) -> Self {
        Self::build_scaled(spec, map_size, effort, effort.scale())
    }

    /// Builds at an explicit target scale (the crash experiments use
    /// [`Effort::crash_scale`]).
    pub fn build_scaled(
        spec: &BenchmarkSpec,
        map_size: MapSize,
        effort: Effort,
        scale: f64,
    ) -> Self {
        let program = spec.build(scale);
        let instrumentation = Instrumentation::assign(
            program.block_count(),
            program.call_sites,
            map_size,
            0xB16_3A9,
        );
        let seeds = spec.build_seeds(&program, effort.max_seeds());
        PreparedBenchmark {
            spec: *spec,
            program,
            instrumentation,
            seeds,
        }
    }

    /// Builds from an explicit program (laf-intel-transformed variants).
    pub fn from_program(
        spec: &BenchmarkSpec,
        program: Program,
        map_size: MapSize,
        effort: Effort,
    ) -> Self {
        let instrumentation = Instrumentation::assign(
            program.block_count(),
            program.call_sites,
            map_size,
            0xB16_3A9,
        );
        let seeds = spec.build_seeds(&program, effort.max_seeds());
        PreparedBenchmark {
            spec: *spec,
            program,
            instrumentation,
            seeds,
        }
    }

    /// Runs one campaign arm over this benchmark.
    pub fn run_campaign(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
    ) -> CampaignStats {
        self.run_campaign_opts(scheme, metric, budget, seed, true)
    }

    /// The standard harness campaign configuration for one arm.
    fn arm_config(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        merged_classify_compare: bool,
    ) -> CampaignConfig {
        CampaignConfig {
            scheme,
            map_size: self.instrumentation.map_size(),
            metric,
            budget,
            mutations_per_seed: 512,
            deterministic: false,
            merged_classify_compare,
            dictionary: Vec::new(),
            trim_new_entries: false,
            seed,
            exec: Default::default(),
            hang_budget: None,
            sparse: None,
            trace: None,
            interp: None,
        }
    }

    /// Runs one campaign arm with optional telemetry and optional
    /// checkpointing. With `checkpoint` set to `(args, key)` the arm
    /// snapshots its state into `args.dir/key` every `args.every`
    /// executions; under `--resume` it first restores from an existing
    /// snapshot (falling back to a cold start when there is none).
    pub fn run_campaign_checkpointed(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Option<Arc<Telemetry>>,
        checkpoint: Option<(&CheckpointArgs, &str)>,
    ) -> CampaignStats {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        if let Some(telemetry) = telemetry {
            campaign.set_telemetry(telemetry);
        }
        let Some((args, key)) = checkpoint else {
            campaign.add_seeds(self.seeds.clone());
            return campaign.run();
        };
        let arm_dir = args.prepare_arm(key);
        self.seed_or_restore(&mut campaign, args, &arm_dir);
        let mut manager = CheckpointManager::new(&arm_dir, args.every)
            .with_min_interval(CheckpointArgs::MIN_INTERVAL);
        campaign.run_with_hook(args.every, move |c| {
            if let Err(err) = manager.maybe_checkpoint(c) {
                eprintln!("  checkpoint write failed (continuing): {err}");
            }
        })
    }

    /// [`run_campaign_checkpointed`](PreparedBenchmark::run_campaign_checkpointed)
    /// that also returns the final corpus (coverage-replay arms).
    pub fn run_campaign_with_corpus_checkpointed(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Option<Arc<Telemetry>>,
        checkpoint: Option<(&CheckpointArgs, &str)>,
    ) -> (CampaignStats, Vec<Vec<u8>>) {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        if let Some(telemetry) = telemetry {
            campaign.set_telemetry(telemetry);
        }
        let Some((args, key)) = checkpoint else {
            campaign.add_seeds(self.seeds.clone());
            return campaign.run_with_corpus();
        };
        let arm_dir = args.prepare_arm(key);
        self.seed_or_restore(&mut campaign, args, &arm_dir);
        let mut manager = CheckpointManager::new(&arm_dir, args.every)
            .with_min_interval(CheckpointArgs::MIN_INTERVAL);
        let output = campaign.run_with_hook_detailed(args.every, move |c| {
            if let Err(err) = manager.maybe_checkpoint(c) {
                eprintln!("  checkpoint write failed (continuing): {err}");
            }
        });
        (output.stats, output.corpus)
    }

    /// Either restores `campaign` from the arm's checkpoint (resume mode,
    /// snapshot present) or seeds it for a cold start. A corrupt or
    /// missing snapshot degrades to the cold start rather than failing
    /// the arm.
    fn seed_or_restore(
        &self,
        campaign: &mut Campaign<'_>,
        args: &CheckpointArgs,
        arm_dir: &std::path::Path,
    ) {
        if args.resume {
            match CheckpointManager::load(arm_dir) {
                Ok(Some(snapshot)) => {
                    campaign.restore(&snapshot);
                    return;
                }
                Ok(None) => {}
                Err(err) => {
                    eprintln!(
                        "  checkpoint in {} unusable ({err}); starting clean",
                        arm_dir.display()
                    );
                }
            }
        }
        campaign.add_seeds(self.seeds.clone());
    }

    /// Runs one campaign arm with an explicit classify/compare pipeline
    /// choice (`merged = false` reproduces the paper's Figure 3 separate
    /// bars).
    pub fn run_campaign_opts(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        merged_classify_compare: bool,
    ) -> CampaignStats {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, merged_classify_compare),
            &interpreter,
            &self.instrumentation,
        );
        campaign.add_seeds(self.seeds.clone());
        campaign.run()
    }

    /// Runs one campaign arm with a live telemetry handle attached; the
    /// final snapshot lands in [`CampaignStats::telemetry`].
    pub fn run_campaign_telemetry(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Arc<Telemetry>,
    ) -> CampaignStats {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        campaign.set_telemetry(telemetry);
        campaign.add_seeds(self.seeds.clone());
        campaign.run()
    }

    /// Runs a campaign arm and returns the final corpus alongside the stats
    /// (coverage replay experiments). `telemetry` optionally attaches a
    /// live stats registry to the arm.
    pub fn run_campaign_with_corpus_telemetry(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Option<Arc<Telemetry>>,
    ) -> (CampaignStats, Vec<Vec<u8>>) {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        if let Some(telemetry) = telemetry {
            campaign.set_telemetry(telemetry);
        }
        campaign.add_seeds(self.seeds.clone());
        campaign.run_with_corpus()
    }

    /// Runs a campaign arm and returns the final corpus alongside the stats
    /// (coverage replay experiments).
    pub fn run_campaign_with_corpus(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
    ) -> (CampaignStats, Vec<Vec<u8>>) {
        self.run_campaign_with_corpus_telemetry(scheme, metric, budget, seed, None)
    }

    /// Average of `runs` campaign arms' throughput (the paper aggregates
    /// three runs per configuration, §V-B).
    pub fn mean_throughput(&self, scheme: MapScheme, budget: Budget, runs: usize) -> f64 {
        self.mean_throughput_telemetry(scheme, budget, runs, None)
    }

    /// [`mean_throughput`](PreparedBenchmark::mean_throughput) with live
    /// telemetry: each run registers a fresh instance in `registry` (when
    /// given) and emits its final snapshot to the registry's sink — the
    /// harness that measures the telemetry layer's own overhead (Figure 6
    /// with `--telemetry`).
    pub fn mean_throughput_telemetry(
        &self,
        scheme: MapScheme,
        budget: Budget,
        runs: usize,
        registry: Option<&TelemetryRegistry>,
    ) -> f64 {
        self.mean_throughput_checkpointed(scheme, budget, runs, registry, None, "")
    }

    /// [`mean_throughput_telemetry`](PreparedBenchmark::mean_throughput_telemetry)
    /// with optional checkpointing: each run checkpoints under (and in
    /// resume mode restores from) `<dir>/<arm_key>-r<run>`.
    pub fn mean_throughput_checkpointed(
        &self,
        scheme: MapScheme,
        budget: Budget,
        runs: usize,
        registry: Option<&TelemetryRegistry>,
        checkpoint: Option<&CheckpointArgs>,
        arm_key: &str,
    ) -> f64 {
        let total: f64 = (0..runs)
            .map(|r| {
                let seed = 0x5EED + r as u64;
                let telemetry = registry.map(|reg| reg.register(reg.snapshots().len()));
                let run_key = format!("{arm_key}-r{r}");
                let stats = self.run_campaign_checkpointed(
                    scheme,
                    MetricKind::Edge,
                    budget,
                    seed,
                    telemetry.clone(),
                    checkpoint.map(|args| (args, run_key.as_str())),
                );
                if let (Some(registry), Some(telemetry)) = (registry, &telemetry) {
                    registry.emit(telemetry);
                }
                stats.throughput()
            })
            .sum();
        total / runs.max(1) as f64
    }
}

/// Prints the standard report header.
pub fn report_header(title: &str, effort: Effort, notes: &str) {
    println!("================================================================");
    println!("{title}");
    println!(
        "mode: {} | target scale: {} | arm budget: {:?}",
        effort.label(),
        effort.scale(),
        effort.arm_budget()
    );
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!("================================================================");
}

/// The map sizes every size-sweep experiment uses (the paper's four).
pub fn evaluated_sizes() -> [MapSize; 4] {
    MapSize::EVALUATED
}

/// Cores available to a fleet experiment, from the result of
/// [`std::thread::available_parallelism`]. Always at least 1: an `Err`
/// (the platform cannot answer — containers without cgroup info,
/// exotic targets) and a nonsensical zero both fall back to a single
/// core, the honest lower bound for normalization.
pub fn effective_cores(parallelism: Result<std::num::NonZeroUsize, std::io::Error>) -> usize {
    parallelism.map_or(1, usize::from).max(1)
}

/// Parallel efficiency of an `N`-worker arm: measured scaling over the
/// ideal scaling `min(N, cores)`. On a host with fewer cores than
/// workers, perfect scheduling still caps aggregate throughput at
/// `cores` single-worker rates, so the ideal is `min(N, cores)`, not
/// `N`.
///
/// # Panics
///
/// Panics if `workers` or `cores` is zero — a zero ideal would divide
/// efficiency by zero and report `inf`/NaN as a verdict. Callers get
/// `cores` from [`effective_cores`], which never returns zero.
pub fn parallel_efficiency(scaling: f64, workers: usize, cores: usize) -> f64 {
    assert!(
        workers > 0 && cores > 0,
        "efficiency denominator must be nonzero (workers {workers}, cores {cores})"
    );
    scaling / workers.min(cores) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parameters_ordered() {
        assert!(Effort::Quick.scale() < Effort::Standard.scale());
        assert!(Effort::Standard.scale() < Effort::Full.scale());
        assert!(Effort::Quick.arm_budget() < Effort::Full.arm_budget());
        assert_eq!(Effort::Quick.label(), "quick");
    }

    #[test]
    fn effective_cores_never_zero() {
        assert_eq!(
            effective_cores(Err(std::io::Error::other("no cgroup info"))),
            1,
            "an unanswerable host must normalize against one core"
        );
        let four = std::num::NonZeroUsize::new(4).unwrap();
        assert_eq!(effective_cores(Ok(four)), 4);
        // Whatever this host answers, the denominator is usable.
        assert!(effective_cores(std::thread::available_parallelism()) >= 1);
    }

    #[test]
    fn efficiency_normalizes_to_min_workers_cores() {
        // 4 workers on a 1-core host: ideal is 1× the single-worker rate,
        // so a 1.0 scaling is perfect efficiency, not 0.25.
        assert_eq!(parallel_efficiency(1.0, 4, 1), 1.0);
        // 4 workers on an 8-core host: ideal is 4×.
        assert_eq!(parallel_efficiency(4.0, 4, 8), 1.0);
        assert_eq!(parallel_efficiency(2.0, 4, 8), 0.5);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn efficiency_rejects_zero_denominator() {
        let _ = parallel_efficiency(1.0, 4, 0);
    }

    #[test]
    fn prepared_benchmark_runs() {
        let spec = BenchmarkSpec::by_name("zlib").unwrap();
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, Effort::Quick);
        let stats =
            prepared.run_campaign(MapScheme::TwoLevel, MetricKind::Edge, Budget::Execs(500), 1);
        assert_eq!(stats.execs, 500);
        assert!(stats.used_len > 0);
    }

    #[test]
    fn mean_throughput_positive() {
        let spec = BenchmarkSpec::by_name("zlib").unwrap();
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, Effort::Quick);
        let t = prepared.mean_throughput(MapScheme::Flat, Budget::Execs(300), 2);
        assert!(t > 0.0);
    }

    #[test]
    fn checkpointed_arm_snapshots_and_resumes() {
        let spec = BenchmarkSpec::by_name("zlib").unwrap();
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, Effort::Quick);
        let root = std::env::temp_dir().join(format!("bigmap-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        // Fresh checkpointed run: the arm leaves a snapshot behind.
        let fresh = CheckpointArgs {
            dir: root.clone(),
            resume: false,
            every: 200,
        };
        let stats = prepared.run_campaign_checkpointed(
            MapScheme::TwoLevel,
            MetricKind::Edge,
            Budget::Execs(600),
            7,
            None,
            Some((&fresh, "arm")),
        );
        assert!(stats.execs >= 600);
        let snapshot = CheckpointManager::load(root.join("arm"))
            .expect("snapshot readable")
            .expect("snapshot written");
        assert!(snapshot.execs >= 200 && snapshot.execs <= stats.execs);

        // Resume mode continues from the snapshot: the arm's final exec
        // count stays monotonic past the restored state.
        let resume = CheckpointArgs {
            resume: true,
            ..fresh.clone()
        };
        let resumed = prepared.run_campaign_checkpointed(
            MapScheme::TwoLevel,
            MetricKind::Edge,
            Budget::Execs(1_000),
            7,
            None,
            Some((&resume, "arm")),
        );
        assert!(resumed.execs >= 1_000);
        assert!(resumed.execs >= snapshot.execs);

        // A fresh (non-resume) run clears the stale arm state first.
        let cleared = prepared.run_campaign_checkpointed(
            MapScheme::TwoLevel,
            MetricKind::Edge,
            Budget::Execs(250),
            7,
            None,
            Some((&fresh, "arm")),
        );
        assert!(cleared.execs >= 250 && cleared.execs < 600);
        let _ = std::fs::remove_dir_all(&root);
    }
}
