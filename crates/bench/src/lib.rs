//! # bigmap-bench
//!
//! Shared plumbing for the per-figure/table harness binaries (`fig2_*` …
//! `table3_*`) and the Criterion micro-benchmarks. Each binary regenerates
//! one table or figure from the paper's evaluation; this library holds the
//! common CLI handling and campaign construction so the binaries stay
//! declarative.
//!
//! All harness binaries accept:
//!
//! * `--quick` — seconds-scale smoke run (small target scale, short
//!   budgets),
//! * `--full` — closer-to-paper scale (minutes to tens of minutes),
//! * neither — a balanced default.
//!
//! Reports print the run's actual parameters in the header so measured
//! numbers in EXPERIMENTS.md are always traceable.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::{Instrumentation, MetricKind};
use bigmap_fuzzer::{
    Budget, Campaign, CampaignConfig, CampaignStats, Telemetry, TelemetryRegistry,
};
use bigmap_target::{BenchmarkSpec, Interpreter, Program};

/// Harness effort level, from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Smoke run: tiny targets, sub-second arms.
    Quick,
    /// Balanced default.
    Standard,
    /// Closer-to-paper scale.
    Full,
}

impl Effort {
    /// Parses `--quick` / `--full` from the process arguments.
    pub fn from_args() -> Effort {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Effort::Quick
        } else if args.iter().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Standard
        }
    }

    /// Target scale factor relative to the paper's benchmark sizes.
    pub fn scale(self) -> f64 {
        match self {
            Effort::Quick => 0.01,
            Effort::Standard => 0.05,
            Effort::Full => 0.25,
        }
    }

    /// Per-arm wall-clock budget for throughput experiments.
    pub fn arm_budget(self) -> Duration {
        match self {
            Effort::Quick => Duration::from_millis(250),
            Effort::Standard => Duration::from_millis(1500),
            Effort::Full => Duration::from_secs(8),
        }
    }

    /// Per-arm wall-clock budget for the crash experiments: crashes are
    /// sparse (the paper ran 24 hours), so these arms run 8x longer than
    /// the throughput arms.
    pub fn crash_arm_budget(self) -> Duration {
        self.arm_budget() * 8
    }

    /// Target scale for the crash experiments (Figures 8, 10, Table III).
    /// Kept at the base scale: LLVM-scale targets cost ~1 ms/exec like
    /// the real binaries, and seconds-scale arms need the smaller
    /// programs' exec rates for crash ladders to fire at all.
    pub fn crash_scale(self) -> f64 {
        self.scale()
    }

    /// Seed-corpus cap.
    pub fn max_seeds(self) -> usize {
        match self {
            Effort::Quick => 8,
            Effort::Standard => 32,
            Effort::Full => 128,
        }
    }

    /// Label for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }
}

/// Parses `--telemetry <path>` (or `--telemetry=<path>`) from the process
/// arguments: the JSONL file the harness should stream telemetry
/// snapshots into. `None` when the flag is absent — telemetry stays off.
pub fn telemetry_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--telemetry=") {
            return Some(PathBuf::from(path));
        }
        if arg == "--telemetry" {
            return args.get(i + 1).map(PathBuf::from);
        }
    }
    None
}

/// A benchmark prepared for campaigns at one map size: program +
/// instrumentation + seeds.
pub struct PreparedBenchmark {
    /// The benchmark spec (paper characteristics).
    pub spec: BenchmarkSpec,
    /// The generated program.
    pub program: Program,
    /// ID tables for the requested map size.
    pub instrumentation: Instrumentation,
    /// Seed corpus.
    pub seeds: Vec<Vec<u8>>,
}

impl PreparedBenchmark {
    /// Builds (generates + "compiles" + seeds) a benchmark.
    pub fn build(spec: &BenchmarkSpec, map_size: MapSize, effort: Effort) -> Self {
        Self::build_scaled(spec, map_size, effort, effort.scale())
    }

    /// Builds at an explicit target scale (the crash experiments use
    /// [`Effort::crash_scale`]).
    pub fn build_scaled(
        spec: &BenchmarkSpec,
        map_size: MapSize,
        effort: Effort,
        scale: f64,
    ) -> Self {
        let program = spec.build(scale);
        let instrumentation = Instrumentation::assign(
            program.block_count(),
            program.call_sites,
            map_size,
            0xB16_3A9,
        );
        let seeds = spec.build_seeds(&program, effort.max_seeds());
        PreparedBenchmark {
            spec: *spec,
            program,
            instrumentation,
            seeds,
        }
    }

    /// Builds from an explicit program (laf-intel-transformed variants).
    pub fn from_program(
        spec: &BenchmarkSpec,
        program: Program,
        map_size: MapSize,
        effort: Effort,
    ) -> Self {
        let instrumentation = Instrumentation::assign(
            program.block_count(),
            program.call_sites,
            map_size,
            0xB16_3A9,
        );
        let seeds = spec.build_seeds(&program, effort.max_seeds());
        PreparedBenchmark {
            spec: *spec,
            program,
            instrumentation,
            seeds,
        }
    }

    /// Runs one campaign arm over this benchmark.
    pub fn run_campaign(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
    ) -> CampaignStats {
        self.run_campaign_opts(scheme, metric, budget, seed, true)
    }

    /// The standard harness campaign configuration for one arm.
    fn arm_config(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        merged_classify_compare: bool,
    ) -> CampaignConfig {
        CampaignConfig {
            scheme,
            map_size: self.instrumentation.map_size(),
            metric,
            budget,
            mutations_per_seed: 512,
            deterministic: false,
            merged_classify_compare,
            dictionary: Vec::new(),
            trim_new_entries: false,
            seed,
            exec: Default::default(),
        }
    }

    /// Runs one campaign arm with an explicit classify/compare pipeline
    /// choice (`merged = false` reproduces the paper's Figure 3 separate
    /// bars).
    pub fn run_campaign_opts(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        merged_classify_compare: bool,
    ) -> CampaignStats {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, merged_classify_compare),
            &interpreter,
            &self.instrumentation,
        );
        campaign.add_seeds(self.seeds.clone());
        campaign.run()
    }

    /// Runs one campaign arm with a live telemetry handle attached; the
    /// final snapshot lands in [`CampaignStats::telemetry`].
    pub fn run_campaign_telemetry(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Arc<Telemetry>,
    ) -> CampaignStats {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        campaign.set_telemetry(telemetry);
        campaign.add_seeds(self.seeds.clone());
        campaign.run()
    }

    /// Runs a campaign arm and returns the final corpus alongside the stats
    /// (coverage replay experiments). `telemetry` optionally attaches a
    /// live stats registry to the arm.
    pub fn run_campaign_with_corpus_telemetry(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
        telemetry: Option<Arc<Telemetry>>,
    ) -> (CampaignStats, Vec<Vec<u8>>) {
        let interpreter = Interpreter::new(&self.program);
        let mut campaign = Campaign::new(
            self.arm_config(scheme, metric, budget, seed, true),
            &interpreter,
            &self.instrumentation,
        );
        if let Some(telemetry) = telemetry {
            campaign.set_telemetry(telemetry);
        }
        campaign.add_seeds(self.seeds.clone());
        campaign.run_with_corpus()
    }

    /// Runs a campaign arm and returns the final corpus alongside the stats
    /// (coverage replay experiments).
    pub fn run_campaign_with_corpus(
        &self,
        scheme: MapScheme,
        metric: MetricKind,
        budget: Budget,
        seed: u64,
    ) -> (CampaignStats, Vec<Vec<u8>>) {
        self.run_campaign_with_corpus_telemetry(scheme, metric, budget, seed, None)
    }

    /// Average of `runs` campaign arms' throughput (the paper aggregates
    /// three runs per configuration, §V-B).
    pub fn mean_throughput(&self, scheme: MapScheme, budget: Budget, runs: usize) -> f64 {
        self.mean_throughput_telemetry(scheme, budget, runs, None)
    }

    /// [`mean_throughput`](PreparedBenchmark::mean_throughput) with live
    /// telemetry: each run registers a fresh instance in `registry` (when
    /// given) and emits its final snapshot to the registry's sink — the
    /// harness that measures the telemetry layer's own overhead (Figure 6
    /// with `--telemetry`).
    pub fn mean_throughput_telemetry(
        &self,
        scheme: MapScheme,
        budget: Budget,
        runs: usize,
        registry: Option<&TelemetryRegistry>,
    ) -> f64 {
        let total: f64 = (0..runs)
            .map(|r| {
                let seed = 0x5EED + r as u64;
                let stats = match registry {
                    Some(registry) => {
                        let telemetry = registry.register(registry.snapshots().len());
                        let stats = self.run_campaign_telemetry(
                            scheme,
                            MetricKind::Edge,
                            budget,
                            seed,
                            Arc::clone(&telemetry),
                        );
                        registry.emit(&telemetry);
                        stats
                    }
                    None => self.run_campaign(scheme, MetricKind::Edge, budget, seed),
                };
                stats.throughput()
            })
            .sum();
        total / runs.max(1) as f64
    }
}

/// Prints the standard report header.
pub fn report_header(title: &str, effort: Effort, notes: &str) {
    println!("================================================================");
    println!("{title}");
    println!(
        "mode: {} | target scale: {} | arm budget: {:?}",
        effort.label(),
        effort.scale(),
        effort.arm_budget()
    );
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!("================================================================");
}

/// The map sizes every size-sweep experiment uses (the paper's four).
pub fn evaluated_sizes() -> [MapSize; 4] {
    MapSize::EVALUATED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parameters_ordered() {
        assert!(Effort::Quick.scale() < Effort::Standard.scale());
        assert!(Effort::Standard.scale() < Effort::Full.scale());
        assert!(Effort::Quick.arm_budget() < Effort::Full.arm_budget());
        assert_eq!(Effort::Quick.label(), "quick");
    }

    #[test]
    fn prepared_benchmark_runs() {
        let spec = BenchmarkSpec::by_name("zlib").unwrap();
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, Effort::Quick);
        let stats =
            prepared.run_campaign(MapScheme::TwoLevel, MetricKind::Edge, Budget::Execs(500), 1);
        assert_eq!(stats.execs, 500);
        assert!(stats.used_len > 0);
    }

    #[test]
    fn mean_throughput_positive() {
        let spec = BenchmarkSpec::by_name("zlib").unwrap();
        let prepared = PreparedBenchmark::build(&spec, MapSize::K64, Effort::Quick);
        let t = prepared.mean_throughput(MapScheme::Flat, Budget::Execs(300), 2);
        assert!(t > 0.0);
    }
}
