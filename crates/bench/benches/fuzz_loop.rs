//! End-to-end fuzz-loop benchmark: full campaigns per (scheme, map size)
//! over a fixed execution budget — the Criterion-tracked companion to the
//! Figure 6 harness, useful for regression-tracking the whole pipeline
//! rather than individual map ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bigmap_core::{MapScheme, MapSize};
use bigmap_coverage::{Instrumentation, MetricKind};
use bigmap_fuzzer::{Campaign, CampaignConfig};
use bigmap_target::{BenchmarkSpec, Interpreter};

fn bench_campaign(c: &mut Criterion) {
    let spec = BenchmarkSpec::by_name("libpng").expect("in suite");
    let program = spec.build(0.02);
    let seeds = spec.build_seeds(&program, 8);
    const EXECS: u64 = 300;

    let mut group = c.benchmark_group("campaign_300_execs_libpng");
    group.throughput(Throughput::Elements(EXECS));
    group.sample_size(10);

    for size in [MapSize::K64, MapSize::M2, MapSize::M8] {
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, size, 5);
        for scheme in [MapScheme::Flat, MapScheme::TwoLevel] {
            let label = format!("{scheme}@{}", size.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(&label),
                &(scheme, size),
                |b, &(scheme, size)| {
                    b.iter(|| {
                        let interpreter = Interpreter::new(&program);
                        let mut campaign = Campaign::new(
                            CampaignConfig::builder()
                                .scheme(scheme)
                                .map_size(size)
                                .metric(MetricKind::Edge)
                                .budget_execs(EXECS)
                                .build(),
                            &interpreter,
                            &instrumentation,
                        );
                        campaign.add_seeds(seeds.clone());
                        std::hint::black_box(campaign.run())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_campaign
}
criterion_main!(benches);
