//! Criterion micro-benchmarks for the map operations and the §IV-E
//! ablations called out in DESIGN.md:
//!
//! * per-operation cost of both structures across map sizes (the
//!   microscopic version of Figure 3),
//! * two-level update overhead at 64 kB (the paper's 0.98x claim),
//! * merged classify+compare vs split (§IV-E, ~2x on the pair),
//! * non-temporal vs standard reset (§IV-E),
//! * hash watermark rule cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bigmap_core::flat::ResetKind;
use bigmap_core::{BigMap, CoverageMap, FlatBitmap, MapSize, VirginState};

/// Active keys resembling a mid-size benchmark (~10k discovered edges).
fn active_keys(n: usize, map: MapSize) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..n)
        .map(|_| rng.gen_range(0..map.bytes() as u32))
        .collect()
}

/// One execution's worth of key events (heavy repetition, like real edges).
fn exec_events(keys: &[u32], events: usize) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(13);
    (0..events)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect()
}

fn populate(map: &mut dyn CoverageMap, events: &[u32]) {
    for &k in events {
        map.record(k);
    }
}

fn bench_ops_across_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_per_testcase");
    for size in [MapSize::K64, MapSize::K256, MapSize::M2, MapSize::M8] {
        let keys = active_keys(10_000, size);
        let events = exec_events(&keys, 5_000);
        group.throughput(Throughput::Elements(1));

        group.bench_with_input(BenchmarkId::new("flat", size.label()), &size, |b, &size| {
            let mut map = FlatBitmap::new(size).unwrap();
            let mut virgin = VirginState::new(size);
            b.iter(|| {
                map.reset();
                populate(&mut map, &events);
                let verdict = map.classify_and_compare(&mut virgin);
                if verdict.is_interesting() {
                    std::hint::black_box(map.hash());
                }
            });
        });
        group.bench_with_input(
            BenchmarkId::new("bigmap", size.label()),
            &size,
            |b, &size| {
                let mut map = BigMap::new(size).unwrap();
                let mut virgin = VirginState::new(size);
                b.iter(|| {
                    map.reset();
                    populate(&mut map, &events);
                    let verdict = map.classify_and_compare(&mut virgin);
                    if verdict.is_interesting() {
                        std::hint::black_box(map.hash());
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_update_overhead(c: &mut Criterion) {
    // DESIGN.md ablation 1: the extra indirection on the hot update path.
    let mut group = c.benchmark_group("update_overhead_64k");
    let keys = active_keys(40_000, MapSize::K64); // dense: worst case
    let events = exec_events(&keys, 10_000);
    group.throughput(Throughput::Elements(events.len() as u64));

    group.bench_function("flat", |b| {
        let mut map = FlatBitmap::new(MapSize::K64).unwrap();
        b.iter(|| populate(&mut map, &events));
    });
    group.bench_function("bigmap", |b| {
        let mut map = BigMap::new(MapSize::K64).unwrap();
        // Pre-discover all keys so the steady-state (sentinel check
        // predicted not-taken) is what gets measured.
        populate(&mut map, &keys);
        b.iter(|| populate(&mut map, &events));
    });
    group.finish();
}

fn bench_classify_compare_merged_vs_split(c: &mut Criterion) {
    // DESIGN.md ablation 2.
    let mut group = c.benchmark_group("classify_compare_2M");
    let size = MapSize::M2;
    let keys = active_keys(10_000, size);
    let events = exec_events(&keys, 5_000);

    group.bench_function("split", |b| {
        let mut map = FlatBitmap::new(size).unwrap();
        let mut virgin = VirginState::new(size);
        populate(&mut map, &events);
        b.iter(|| {
            map.classify();
            std::hint::black_box(map.compare(&mut virgin));
        });
    });
    group.bench_function("merged", |b| {
        let mut map = FlatBitmap::new(size).unwrap();
        let mut virgin = VirginState::new(size);
        populate(&mut map, &events);
        b.iter(|| {
            std::hint::black_box(map.classify_and_compare(&mut virgin));
        });
    });
    group.finish();
}

fn bench_reset_nontemporal(c: &mut Criterion) {
    // DESIGN.md ablation 3: cache-polluting vs streaming reset.
    let mut group = c.benchmark_group("reset_8M");
    for (label, kind) in [
        ("standard", ResetKind::Standard),
        ("nontemporal", ResetKind::NonTemporal),
    ] {
        group.bench_function(label, |b| {
            let mut map = FlatBitmap::with_reset_kind(MapSize::M8, kind).unwrap();
            map.record(1);
            b.iter(|| map.reset());
        });
    }
    // BigMap's reset for contrast: used-prefix only.
    group.bench_function("bigmap_prefix", |b| {
        let mut map = BigMap::new(MapSize::M8).unwrap();
        let keys = active_keys(10_000, MapSize::M8);
        populate(&mut map, &keys);
        b.iter(|| map.reset());
    });
    group.finish();
}

fn bench_hash_watermark(c: &mut Criterion) {
    // DESIGN.md ablation 4: hash cost under the two rules.
    let mut group = c.benchmark_group("hash_8M");
    group.bench_function("flat_full_map", |b| {
        let mut map = FlatBitmap::new(MapSize::M8).unwrap();
        map.record(123);
        b.iter(|| std::hint::black_box(map.hash()));
    });
    group.bench_function("bigmap_watermark", |b| {
        let mut map = BigMap::new(MapSize::M8).unwrap();
        let keys = active_keys(10_000, MapSize::M8);
        populate(&mut map, &keys);
        b.iter(|| std::hint::black_box(map.hash()));
    });
    group.finish();
}

fn bench_index_sentinel_check(c: &mut Criterion) {
    // DESIGN.md ablation 5: steady-state vs discovery-heavy updates.
    let mut group = c.benchmark_group("index_sentinel_2M");
    let keys = active_keys(50_000, MapSize::M2);
    group.throughput(Throughput::Elements(keys.len() as u64));

    group.bench_function("steady_state_hits", |b| {
        let mut map = BigMap::new(MapSize::M2).unwrap();
        populate(&mut map, &keys); // all discovered
        b.iter(|| populate(&mut map, &keys));
    });
    group.bench_function("cold_discovery", |b| {
        b.iter_batched(
            || BigMap::new(MapSize::M2).unwrap(),
            |mut map| populate(&mut map, &keys),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
        bench_ops_across_sizes,
        bench_update_overhead,
        bench_classify_compare_merged_vs_split,
        bench_reset_nontemporal,
        bench_hash_watermark,
        bench_index_sentinel_check
}
criterion_main!(benches);
