//! Quickstart: fuzz a small synthetic target with BigMap.
//!
//! Builds a tiny gate-chain target with a planted crash behind a magic
//! value, fuzzes it for a fixed budget with the two-level map, and prints
//! what the campaign found. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bigmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A fuzz target: a chain of byte gates; solving "BUG!" crashes.
    //    In the reproduction, this stands in for an instrumented binary.
    let roadblocked = ProgramBuilder::new("quickstart")
        .gate(0, b'F', false)
        .gate(1, b'U', false)
        .loop_gate(2, 12)
        .magic_gate(4, b"BUG!", true)
        .build()?;

    // A 4-byte magic compare is a 2^32 lottery for blind mutation — so
    // apply laf-intel and let coverage feedback climb it byte by byte.
    let (program, laf) = apply_laf_intel(&roadblocked);
    println!(
        "target: {} blocks, {} static edges, {} crash site(s) \
         (laf-intel split {} comparison(s))",
        program.block_count(),
        program.static_edge_count(),
        program.crash_sites,
        laf.comparisons_split,
    );

    // 2. "Compile" the target for an 8 MiB map. BigMap makes this size
    //    essentially free, so there is no reason to gamble on 64 kB.
    let map_size = MapSize::M8;
    let instrumentation = Instrumentation::assign(
        program.block_count(),
        program.call_sites,
        map_size,
        0xC0FFEE,
    );

    // 3. Run the campaign.
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(
        CampaignConfig::builder()
            .scheme(MapScheme::TwoLevel)
            .map_size(map_size)
            .budget_execs(1_500_000)
            .build(),
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(vec![b"hello world, have some bytes".to_vec()]);
    let stats = campaign.run();

    // 4. Report.
    println!(
        "ran {} execs in {:?} ({:.0}/sec)",
        stats.execs,
        stats.wall_time,
        stats.throughput()
    );
    println!(
        "queue: {} seeds | coverage slots used: {} of {} ({}%)",
        stats.queue_len,
        stats.used_len,
        map_size.bytes(),
        100 * stats.used_len / map_size.bytes(),
    );
    println!(
        "crashes: {} unique (Crashwalk), {} total",
        stats.unique_crashes, stats.total_crashes
    );
    println!("per-stage time: {}", stats.ops);

    if stats.unique_crashes > 0 {
        println!("\nThe planted BUG! was found — note how little of the 8 MiB");
        println!("map was actually touched: that used prefix is the only part");
        println!("BigMap's reset/classify/compare/hash ever traverse.");
    } else {
        println!("\nNo crash this time — havoc ladders are stochastic; re-run");
        println!("or raise the exec budget.");
    }
    Ok(())
}
