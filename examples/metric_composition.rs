//! Metric composition: laf-intel + N-gram on one target (§V-C in
//! miniature).
//!
//! Takes a magic-compare-heavy target, applies the laf-intel transform,
//! stacks the N-gram(3) metric, and fuzzes the result with BigMap at 64 kB
//! vs 2 MB — showing how the composition blows up the key population and
//! how the bigger map recovers the lost crashes.
//!
//! ```text
//! cargo run --release --example metric_composition
//! ```

use std::time::Duration;

use bigmap::prelude::*;

fn campaign(
    program: &Program,
    map_size: MapSize,
    metric: MetricKind,
    seeds: &[Vec<u8>],
) -> CampaignStats {
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 7);
    let interpreter = Interpreter::new(program);
    let mut campaign = Campaign::new(
        CampaignConfig::builder()
            .scheme(MapScheme::TwoLevel)
            .map_size(map_size)
            .metric(metric)
            .budget_time(Duration::from_secs(2))
            .build(),
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(seeds.to_vec());
    campaign.run()
}

fn main() {
    // A magic-heavy target with buried crashes — the kind of program
    // laf-intel was built for.
    let base = GeneratorConfig {
        name: "llvm-ish".into(),
        functions: 10,
        gates_per_function: 16,
        magic_gate_ratio: 0.45,
        switch_ratio: 0.15,
        crash_sites: 12,
        crash_guard_width: 3,
        seed: 0xDEC0DE,
        ..Default::default()
    }
    .generate();

    let (laf, stats) = apply_laf_intel(&base);
    println!(
        "laf-intel: split {} comparisons, deconstructed {} switches, +{} blocks",
        stats.comparisons_split, stats.switches_deconstructed, stats.blocks_added
    );
    println!(
        "static edges: {} -> {}\n",
        base.static_edge_count(),
        laf.static_edge_count()
    );

    let seeds = generate_seeds(&laf, 12, 99);
    let mut table = TextTable::new(vec![
        "configuration",
        "map",
        "keys used",
        "collision %",
        "unique crashes",
    ]);

    for (label, program, metric) in [
        ("edge only", &base, MetricKind::Edge),
        ("laf+edge", &laf, MetricKind::Edge),
        ("laf+ngram3", &laf, MetricKind::NGram(3)),
    ] {
        for map_size in [MapSize::K64, MapSize::M2] {
            let stats = campaign(program, map_size, metric, &seeds);
            table.row(vec![
                label.into(),
                map_size.label(),
                stats.used_len.to_string(),
                format!(
                    "{:.1}",
                    100.0 * collision_rate(1 << 16, stats.used_len as u64)
                ),
                stats.unique_crashes.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: each composition step multiplies the key population \
         (map pressure); at 64k the collision rate climbs accordingly, \
         and the 2M arm recovers crashes the collisions were hiding."
    );
}
