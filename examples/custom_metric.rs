//! Custom coverage metric: BigMap is metric-agnostic (§IV-D).
//!
//! The paper stresses that "any coverage metric can be used in edge ID's
//! place". This example defines a metric the library does not ship — a
//! toy *rare-byte* metric keying on (block, input-length bucket) pairs —
//! plugs it into the standard executor unchanged, and fuzzes with it.
//!
//! ```text
//! cargo run --release --example custom_metric
//! ```

use bigmap::prelude::*;

/// A homegrown metric: hashes each block with a coarse bucket of the
/// current input length, so the same block reached by differently sized
/// inputs counts as different coverage. (Not a *good* metric — the point
/// is that nothing in the map or executor needs to know about it.)
#[derive(Debug, Default)]
struct BlockTimesLenBucket {
    len_bucket: u32,
}

impl BlockTimesLenBucket {
    fn set_input_len(&mut self, len: usize) {
        self.len_bucket = (len as u32 / 16).min(15);
    }
}

impl CoverageMetric for BlockTimesLenBucket {
    fn kind(&self) -> MetricKind {
        MetricKind::Block // closest standard family, for reporting
    }

    fn begin_execution(&mut self) {}

    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        if let TraceEvent::Block(id) = event {
            sink(id.rotate_left(7) ^ (self.len_bucket.wrapping_mul(0x9E37_79B9)));
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = GeneratorConfig {
        name: "custom-metric-demo".into(),
        seed: 5,
        ..Default::default()
    }
    .generate();
    let map_size = MapSize::M2;
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 1);
    let interpreter = Interpreter::new(&program);

    // Drive the metric by hand through the executor building blocks: one
    // BigMap, one virgin state, our metric.
    let mut metric = BlockTimesLenBucket::default();
    let mut map = bigmap::core::BigMap::new(map_size)?;
    let mut virgin = VirginState::new(map_size);
    let mut mutator = Mutator::new(1);
    let mut corpus: Vec<Vec<u8>> = vec![b"seed input".to_vec()];
    let mut interesting = 0u32;

    for i in 0..20_000 {
        let parent = &corpus[i % corpus.len()];
        let child = mutator.havoc(parent, None);

        map.reset();
        metric.set_input_len(child.len());
        metric.begin_execution();

        struct Sink<'a> {
            inst: &'a Instrumentation,
            metric: &'a mut BlockTimesLenBucket,
            map: &'a mut bigmap::core::BigMap,
        }
        impl bigmap::target::TraceSink for Sink<'_> {
            fn on_block(&mut self, g: usize) {
                let Sink { inst, metric, map } = self;
                let id = inst.block_id(g);
                metric.on_event(TraceEvent::Block(id), &mut |k| map.record(k));
            }
            fn on_call(&mut self, _c: usize) {}
            fn on_return(&mut self) {}
        }
        let mut sink = Sink {
            inst: &instrumentation,
            metric: &mut metric,
            map: &mut map,
        };
        let _ = interpreter.run(&child, &mut sink);

        if map.classify_and_compare(&mut virgin).is_interesting() {
            interesting += 1;
            corpus.push(child);
        }
    }

    println!(
        "custom metric over 20k execs: {} interesting inputs, {} distinct \
         keys ({} map slots of {} used — {:.2}%)",
        interesting,
        map.used_len(),
        map.used_len(),
        map_size.bytes(),
        100.0 * map.used_len() as f64 / map_size.bytes() as f64,
    );
    println!(
        "the map never iterated more than its {}-byte used prefix — the \
         metric plugged in with zero changes to the map code.",
        map.used_len()
    );
    Ok(())
}
