//! Map-size showdown: the paper's core claim on your machine.
//!
//! Runs equal-time campaigns with AFL's flat map and BigMap's two-level
//! map at 64 kB, 2 MB and 8 MB on a mid-size synthetic benchmark, and
//! prints the throughput matrix — a miniature of the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example map_size_showdown
//! ```

use std::time::Duration;

use bigmap::prelude::*;

fn main() {
    let spec = BenchmarkSpec::by_name("sqlite3").expect("in Table II");
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 16);
    println!(
        "benchmark: {}-like ({} blocks, {} static edges)\n",
        spec.name,
        program.block_count(),
        program.static_edge_count()
    );

    let budget = Duration::from_secs(2);
    let mut table = TextTable::new(vec!["map size", "AFL exec/s", "BigMap exec/s", "speedup"]);

    for map_size in [MapSize::K64, MapSize::M2, MapSize::M8] {
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, map_size, 42);
        let mut throughput = [0.0f64; 2];
        for (i, scheme) in [MapScheme::Flat, MapScheme::TwoLevel]
            .into_iter()
            .enumerate()
        {
            let interpreter = Interpreter::new(&program);
            let mut campaign = Campaign::new(
                CampaignConfig::builder()
                    .scheme(scheme)
                    .map_size(map_size)
                    .budget_time(budget)
                    .build(),
                &interpreter,
                &instrumentation,
            );
            campaign.add_seeds(seeds.clone());
            throughput[i] = campaign.run().throughput();
        }
        table.row(vec![
            map_size.label(),
            format!("{:.0}", throughput[0]),
            format!("{:.0}", throughput[1]),
            format!("{:.2}x", throughput[1] / throughput[0].max(1e-9)),
        ]);
    }
    println!("{table}");
    println!("expected: near-parity at 64k; BigMap pulls away as the map grows.");
}
