//! Corpus tooling: trimming, minimization and plateau analysis.
//!
//! Runs a short campaign, then demonstrates the three corpus utilities:
//! AFL-style input trimming (shrink each seed while its coverage hash is
//! unchanged), afl-cmin-style corpus minimization (drop inputs that add no
//! structural edges), and the coverage timeline's plateau detector.
//!
//! ```text
//! cargo run --release --example corpus_tools
//! ```

use bigmap::core::BigMap;
use bigmap::fuzzer::{minimize_corpus, trim_input};
use bigmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::by_name("proj4").expect("in Table II");
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 16);
    let map_size = MapSize::M2;
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 21);

    // 1. Fuzz briefly to grow a corpus.
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(
        CampaignConfig::builder()
            .scheme(MapScheme::TwoLevel)
            .map_size(map_size)
            .budget_execs(20_000)
            .build(),
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(seeds);
    let (stats, corpus) = campaign.run_with_corpus();
    println!(
        "campaign: {} execs, corpus of {} inputs, {} bytes total",
        stats.execs,
        corpus.len(),
        corpus.iter().map(Vec::len).sum::<usize>(),
    );

    // 2. Plateau analysis (Figure 7's question).
    println!(
        "discovery plateaued over the last half of the run: {} \
         (final discovery units: {})",
        stats.timeline.plateaued(0.5, 0.05),
        stats.timeline.final_coverage(),
    );

    // 3. Trim every input (AFL's trim stage).
    let mut executor = Executor::new(
        &interpreter,
        &instrumentation,
        Box::new(EdgeHitCount::new()),
    );
    let mut scratch = BigMap::new(map_size)?;
    let mut removed = 0usize;
    let trimmed: Vec<Vec<u8>> = corpus
        .iter()
        .map(|input| {
            let result = trim_input(&mut executor, &mut scratch, input);
            removed += result.removed;
            result.input
        })
        .collect();
    println!(
        "trim: removed {} bytes total ({} -> {} bytes)",
        removed,
        corpus.iter().map(Vec::len).sum::<usize>(),
        trimmed.iter().map(Vec::len).sum::<usize>(),
    );

    // 4. Minimize the trimmed corpus (afl-cmin).
    let min = minimize_corpus(&interpreter, &trimmed);
    println!(
        "cmin: kept {} of {} inputs, structural edges {} -> {} (lossless)",
        min.kept.len(),
        trimmed.len(),
        min.edges_before,
        min.edges_after,
    );
    Ok(())
}
