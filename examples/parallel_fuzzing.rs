//! Parallel fuzzing: master–secondary scaling (§V-D in miniature).
//!
//! Runs 1, 2 and 4 concurrent instances of both fuzzers with a 2 MB map on
//! a crash-bearing target and prints total test cases and fleet-wide
//! unique crashes — the shape of the paper's Figures 9 and 10.
//!
//! ```text
//! cargo run --release --example parallel_fuzzing
//! ```

use std::time::Duration;

use bigmap::prelude::*;

fn main() {
    let spec = BenchmarkSpec::by_name("gvn").expect("in Table II");
    let program = spec.build(0.03);
    let seeds = spec.build_seeds(&program, 16);
    let map_size = MapSize::M2;
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 11);
    println!(
        "benchmark: {}-like | map: {} | crash sites: {}\n",
        spec.name,
        map_size.label(),
        program.crash_sites
    );

    let mut table = TextTable::new(vec![
        "fuzzer",
        "instances",
        "total execs",
        "scaling",
        "unique crashes",
    ]);

    for scheme in [MapScheme::TwoLevel, MapScheme::Flat] {
        let mut base_execs = 0f64;
        for instances in [1usize, 2, 4] {
            let config = CampaignConfig::builder()
                .scheme(scheme)
                .map_size(map_size)
                .budget_time(Duration::from_secs(2))
                .deterministic(true) // the master runs deterministic stages
                .build();
            let stats = run_parallel(
                &program,
                &instrumentation,
                &config,
                &seeds,
                instances,
                5_000,
            );
            let total = stats.total_execs() as f64;
            if instances == 1 {
                base_execs = total;
            }
            table.row(vec![
                scheme.to_string(),
                instances.to_string(),
                format!("{total:.0}"),
                format!("{:.2}x", total / base_execs.max(1.0)),
                stats.unique_crashes.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: neither fuzzer scales 1:1 with a 2MB map (shared LLC), \
         but BigMap scales much better — and turns the extra executions \
         into more unique crashes."
    );
}
